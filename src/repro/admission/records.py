"""Columnar admission telemetry: who was shed, when, and why.

Every shed decision appends one row to a :class:`ShedLog` -- the arrival
time, the **exact query index** in the arrival stream, the interned shed
reason, and the two signals the policy saw (busiest-server backlog and the
policy's own gating signal).  Controller ticks append one ``adm_*`` row
each (token rate, windowed p99, backlog high-water mark, running
accepted/shed counts), and every flushed engine chunk appends one
``shedchunk_*`` row with the chunk's accepted/shed deltas.

All shed/tick rows are simulated-time quantities, deterministic and
bit-identical across engines; the per-chunk rows depend on engine chunking
(the reference path has no chunks and writes a single whole-run summary
row), so archive diffing skips the ``shedchunk_`` prefix the same way it
skips wall-clock columns.

Example -- a log round-trips through the archive layer::

    >>> import tempfile, os
    >>> from repro.telemetry.archive import write_archive_columns, read_archive
    >>> log = ShedLog()
    >>> log.record_shed(4.0, 120, "queue-cap", backlog=9.5, signal=1.2)
    >>> log.record_tick(5.0, 130, rate=40.0, p99=1.2, backlog_hwm=9.5,
    ...                 accepted=129, shed=1, cap_queries=38.0)
    >>> path = os.path.join(tempfile.mkdtemp(), "shed.npz")
    >>> write_archive_columns(path, log.columns(),
    ...                       meta={"admission": log.meta(policy="aimd")})
    >>> sheds, ticks, meta = admission_from_archive(read_archive(path))
    >>> (sheds[0].reason, sheds[0].query_index, ticks[0].rate)
    ('queue-cap', 120, 40.0)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ShedLog",
    "ShedRecord",
    "AdmissionTick",
    "admission_from_archive",
    "explain_admission",
    "render_admission",
]


@dataclass(frozen=True)
class ShedRecord:
    """One shed query, reconstructed from archive columns."""

    time: float
    query_index: int
    reason: str  # queue-cap / rate / p99 / ...
    backlog: float  # busiest-server backlog (seconds) at the decision
    signal: float  # policy gating signal (tokens for aimd, p99 for delay_gated)


@dataclass(frozen=True)
class AdmissionTick:
    """One admission-controller tick, reconstructed from archive columns."""

    time: float
    query_index: int
    rate: float  # token rate after adaptation (NaN for rateless policies)
    p99: float  # windowed p99 delay the tick saw (NaN when window empty)
    backlog_hwm: float  # backlog high-water mark since the previous tick
    accepted: int  # running accepted count at the tick
    shed: int  # running shed count at the tick
    cap_queries: float  # queue cap expressed in queries (rate * cap seconds)


class ShedLog:
    """Columnar accumulator of shed decisions, ticks, and chunk counts.

    Mirrors :class:`~repro.obs.audit.DecisionLog`: numeric inputs live in
    ``GrowArray`` columns, shed reasons are interned into a side table
    carried in archive meta, so the columns stay pure numerics the generic
    archive reader round-trips.
    """

    def __init__(self) -> None:
        from ..telemetry.columns import GrowArray

        # one row per shed query
        self._shed_time = GrowArray(dtype="float64")
        self._shed_query_index = GrowArray(dtype="int64")
        self._shed_reason = GrowArray(dtype="int64")
        self._shed_backlog = GrowArray(dtype="float64")
        self._shed_signal = GrowArray(dtype="float64")
        # one row per controller tick
        self._adm_time = GrowArray(dtype="float64")
        self._adm_query_index = GrowArray(dtype="int64")
        self._adm_rate = GrowArray(dtype="float64")
        self._adm_p99 = GrowArray(dtype="float64")
        self._adm_backlog_hwm = GrowArray(dtype="float64")
        self._adm_accepted = GrowArray(dtype="int64")
        self._adm_shed = GrowArray(dtype="int64")
        self._adm_cap_queries = GrowArray(dtype="float64")
        # one row per flushed engine chunk (engine-granularity, not gated)
        self._chunk_start = GrowArray(dtype="int64")
        self._chunk_accepted = GrowArray(dtype="int64")
        self._chunk_shed = GrowArray(dtype="int64")
        self._reasons: list[str] = []
        self._chunk_shed_seen = 0

    def __len__(self) -> int:
        return self._shed_time.n

    @property
    def n_sheds(self) -> int:
        return self._shed_time.n

    @property
    def n_ticks(self) -> int:
        return self._adm_time.n

    def _intern(self, value: str) -> int:
        try:
            return self._reasons.index(value)
        except ValueError:
            self._reasons.append(value)
            return len(self._reasons) - 1

    # -- recording ---------------------------------------------------------
    def record_shed(
        self,
        time: float,
        query_index: int,
        reason: str,
        backlog: float,
        signal: float,
    ) -> None:
        """Append one shed decision at its exact arrival-stream index."""
        self._shed_time.append(float(time))
        self._shed_query_index.append(int(query_index))
        self._shed_reason.append(self._intern(reason))
        self._shed_backlog.append(float(backlog))
        self._shed_signal.append(float(signal))

    def record_tick(
        self,
        time: float,
        query_index: int,
        rate: float,
        p99: float,
        backlog_hwm: float,
        accepted: int,
        shed: int,
        cap_queries: float,
    ) -> None:
        """Append one controller tick (post-adaptation state + inputs)."""
        self._adm_time.append(float(time))
        self._adm_query_index.append(int(query_index))
        self._adm_rate.append(float(rate))
        self._adm_p99.append(float(p99))
        self._adm_backlog_hwm.append(float(backlog_hwm))
        self._adm_accepted.append(int(accepted))
        self._adm_shed.append(int(shed))
        self._adm_cap_queries.append(float(cap_queries))

    def record_chunk(self, log_start: int, accepted: int, shed_total: int) -> None:
        """Append one engine chunk's accepted count and shed delta.

        *shed_total* is the policy's running shed counter; the log keeps
        the delta since the previous chunk so the column sums to the total.
        """
        self._chunk_start.append(int(log_start))
        self._chunk_accepted.append(int(accepted))
        self._chunk_shed.append(int(shed_total) - self._chunk_shed_seen)
        self._chunk_shed_seen = int(shed_total)

    # -- persistence -------------------------------------------------------
    def columns(self) -> dict:
        """Archive-ready ``shed_*``/``adm_*``/``shedchunk_*`` columns (copies)."""
        return {
            "shed_time": self._shed_time.copy(),
            "shed_query_index": self._shed_query_index.copy(),
            "shed_reason": self._shed_reason.copy(),
            "shed_backlog": self._shed_backlog.copy(),
            "shed_signal": self._shed_signal.copy(),
            "adm_time": self._adm_time.copy(),
            "adm_query_index": self._adm_query_index.copy(),
            "adm_rate": self._adm_rate.copy(),
            "adm_p99": self._adm_p99.copy(),
            "adm_backlog_hwm": self._adm_backlog_hwm.copy(),
            "adm_accepted": self._adm_accepted.copy(),
            "adm_shed": self._adm_shed.copy(),
            "adm_cap_queries": self._adm_cap_queries.copy(),
            "shedchunk_start": self._chunk_start.copy(),
            "shedchunk_accepted": self._chunk_accepted.copy(),
            "shedchunk_shed": self._chunk_shed.copy(),
        }

    def meta(
        self,
        policy: Optional[str] = None,
        window: Optional[float] = None,
        slo: Optional[float] = None,
        queue_cap: Optional[float] = None,
    ) -> dict:
        """The reason interning table + policy parameters, for archive meta."""
        out: dict = {"schema": 1, "reasons": list(self._reasons)}
        if policy is not None:
            out["policy"] = str(policy)
        if window is not None:
            out["window"] = float(window)
        if slo is not None:
            out["slo"] = float(slo)
        if queue_cap is not None:
            out["queue_cap"] = float(queue_cap)
        return out

    def records(self, meta: Optional[dict] = None) -> tuple[list, list]:
        """The log as (:class:`ShedRecord` list, :class:`AdmissionTick` list)."""
        return _build_records(self.columns(), meta or self.meta())


def _build_records(columns: dict, meta: dict) -> tuple[list, list]:
    reasons = meta.get("reasons", [])
    sheds = [
        ShedRecord(
            time=float(columns["shed_time"][i]),
            query_index=int(columns["shed_query_index"][i]),
            reason=reasons[int(columns["shed_reason"][i])],
            backlog=float(columns["shed_backlog"][i]),
            signal=float(columns["shed_signal"][i]),
        )
        for i in range(len(columns["shed_time"]))
    ]
    ticks = [
        AdmissionTick(
            time=float(columns["adm_time"][i]),
            query_index=int(columns["adm_query_index"][i]),
            rate=float(columns["adm_rate"][i]),
            p99=float(columns["adm_p99"][i]),
            backlog_hwm=float(columns["adm_backlog_hwm"][i]),
            accepted=int(columns["adm_accepted"][i]),
            shed=int(columns["adm_shed"][i]),
            cap_queries=float(columns["adm_cap_queries"][i]),
        )
        for i in range(len(columns["adm_time"]))
    ]
    return sheds, ticks


def admission_from_archive(archive) -> tuple[list, list, dict]:
    """Rebuild shed records and ticks from a read archive.

    *archive* is the object ``repro.telemetry.archive.read_archive``
    returns; raises ``ValueError`` when it carries no admission columns
    (the scenario ran without an admission controller).
    """
    if "shed_time" not in archive.columns:
        raise ValueError(
            "archive has no admission columns (shed_*): the run had no "
            "admission controller"
        )
    meta = archive.meta.get("admission", {})
    sheds, ticks = _build_records(archive.columns, meta)
    return sheds, ticks, meta


def explain_admission(archive) -> list:
    """Cross-check each tick's windowed p99 against the delay columns.

    The admission window samples completed **admitted** queries by arrival
    time -- exactly the queries in the archived delay log (shed queries
    are logged in ``shed_*``, never in ``log_*``; dropped queries are in
    neither).  Recomputing the p99 over the logged rows with
    ``tick - window <= arrival <= tick`` must reproduce the recorded
    input bit-for-bit, the same invariant
    :func:`repro.obs.audit.explain_archive` holds for controller
    decisions.

    Returns ``[(tick, ok, recomputed_p99, n_window), ...]``.
    """
    from ..telemetry.columns import array_percentile

    _, ticks, meta = admission_from_archive(archive)
    window = meta.get("window")
    arrivals = archive.columns.get("log_arrival")
    finishes = archive.columns.get("log_finish")
    out = []
    for tick in ticks:
        if window is None or arrivals is None or finishes is None:
            out.append((tick, False, float("nan"), -1))
            continue
        mask = (arrivals >= tick.time - window) & (arrivals <= tick.time)
        vals = finishes[mask] - arrivals[mask]
        n_window = int(vals.size)
        p99 = float(array_percentile(vals, 99)) if n_window else float("nan")
        ok = (p99 == tick.p99) or (math.isnan(p99) and math.isnan(tick.p99))
        out.append((tick, ok, p99, n_window))
    return out


def render_admission(sheds, ticks, checks=None, meta=None) -> str:
    """The ``repro explain`` admission section: summary + tick table.

    *checks* is :func:`explain_admission` output for the same archive;
    when given, its per-tick verdicts replace *ticks* entirely.
    """
    meta = meta or {}
    lines = []
    policy = meta.get("policy")
    header = f"admission: policy={policy or '?'}"
    for key in ("slo", "window", "queue_cap"):
        if meta.get(key) is not None:
            header += f" {key}={meta[key]:g}"
    lines.append(header)
    by_reason: dict[str, int] = {}
    for rec in sheds:
        by_reason[rec.reason] = by_reason.get(rec.reason, 0) + 1
    reasons = ", ".join(f"{k}={v}" for k, v in sorted(by_reason.items()))
    lines.append(f"shed: {len(sheds)} ({reasons or 'none'})")
    lines.append(
        f"{'time':>8s} {'query#':>8s} {'rate':>9s} {'p99':>8s} "
        f"{'hwm':>8s} {'acc':>8s} {'shed':>8s} {'check':>6s}"
    )
    if checks:
        rows = [(tick, "ok" if ok else "FAIL") for tick, ok, _, _ in checks]
    else:
        rows = [(tick, "-") for tick in ticks]
    for tick, check in rows:
        rate = f"{tick.rate:>9.3f}" if not math.isnan(tick.rate) else f"{'-':>9s}"
        p99 = f"{tick.p99:>8.3f}" if not math.isnan(tick.p99) else f"{'-':>8s}"
        lines.append(
            f"{tick.time:>8.2f} {tick.query_index:>8d} {rate} {p99} "
            f"{tick.backlog_hwm:>8.2f} {tick.accepted:>8d} "
            f"{tick.shed:>8d} {check:>6s}"
        )
    return "\n".join(lines)
