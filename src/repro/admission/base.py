"""The admission-policy contract and the shared queue-cap machinery.

An :class:`AdmissionPolicy` sits at the front of the engine's arrival
loop: for every query it sees the arrival time and the busiest-server
backlog (seconds of queued work, from the engine's queue mirrors) and
either admits the query or sheds it with a reason.  Completed-query
delays flow back in through :meth:`AdmissionPolicy.observe` -- the same
arrival-ordered sliding window the control plane's
:class:`~repro.control.metrics.MetricsCollector` keeps -- and the
exact-time action queue drives :meth:`AdmissionPolicy.tick` at scheduled
query indices, where adaptive policies (AIMD) adjust their rate.

**Queue-cap sizing.**  Every non-passthrough policy bounds the backlog a
query may be admitted into: ``queue_cap = cap_multiple * slo`` seconds.
This is the buffer-sizing argument (Spang et al.) translated to the
serving path: backlog measured in *seconds of work* is the bandwidth-delay
product divided by the bandwidth, so capping queued-work-seconds at a
small multiple of the target delay bounds worst-case queueing delay at
that multiple of the SLO regardless of service rate.  The equivalent cap
in *queries* -- observed service rate x cap seconds -- is recorded at
every tick (``cap_queries``) so the classic BDP form stays inspectable.

Example::

    >>> from repro.admission import get_policy
    >>> pol = get_policy("delay_gated:slo=0.5,cap_multiple=2")
    >>> pol.queue_cap
    1.0
    >>> pol.admit(0, now=0.0, backlog=0.2)  # under cap, window empty
    >>> pol.admit(1, now=0.1, backlog=5.0)  # over the 1.0s cap
    'queue-cap'
    >>> (pol.accepted, pol.shed)
    (1, 1)
"""

from __future__ import annotations

import math
from typing import Optional

from ..control.metrics import SlidingWindow
from .records import ShedLog

__all__ = ["AdmissionPolicy"]


class AdmissionPolicy:
    """Base class: queue-cap pre-check, telemetry, and the tick loop.

    Subclasses implement :meth:`_decide` (shed reason or ``None`` per
    query) and optionally :meth:`_adapt` (rate adjustment at ticks) and
    :meth:`_consume` (charge an admitted query, e.g. a token).
    """

    #: registry name, set by subclasses.
    name = "base"
    description = ""
    #: accept-all marker: :func:`~repro.admission.resolve_admission` maps
    #: passthrough policies to ``None`` so the engine runs the untouched
    #: (bit-identical) no-admission code path.
    passthrough = False

    def __init__(
        self,
        slo: float = 1.0,
        window: float = 10.0,
        cap_multiple: float = 4.0,
    ) -> None:
        if slo <= 0:
            raise ValueError(f"slo must be positive, got {slo}")
        if cap_multiple <= 0:
            raise ValueError(f"cap_multiple must be positive, got {cap_multiple}")
        self.slo = float(slo)
        self.cap_multiple = float(cap_multiple)
        #: admission ceiling in seconds of busiest-server backlog.
        self.queue_cap = self.cap_multiple * self.slo
        self.window = SlidingWindow(float(window))
        self.log = ShedLog()
        self.accepted = 0
        self.shed = 0
        #: largest backlog any *admitted* query entered (cap invariant).
        self.max_admitted_backlog = 0.0
        self._backlog_hwm = 0.0

    # -- the per-query decision -------------------------------------------
    def admit(self, query_index: int, now: float, backlog: float) -> Optional[str]:
        """Admit (``None``) or shed (reason string) one arriving query.

        *backlog* is the busiest-server queued work in seconds; the
        queue-cap check runs first, then the policy's own gate.
        """
        if backlog > self._backlog_hwm:
            self._backlog_hwm = backlog
        if backlog >= self.queue_cap:
            reason: Optional[str] = "queue-cap"
        else:
            reason = self._decide(now, backlog)
        if reason is None:
            self.accepted += 1
            if backlog > self.max_admitted_backlog:
                self.max_admitted_backlog = backlog
            self._consume(now)
            return None
        self.shed += 1
        self.log.record_shed(now, query_index, reason, backlog, self.signal(now))
        return reason

    def observe(self, now: float, delay: float) -> None:
        """Feed one completed query's delay back (arrival-ordered)."""
        self.window.add(now, delay)

    def tick(self, now: float, query_index: int = -1) -> None:
        """One exact-time controller tick: adapt, then log the state."""
        p99 = self.window.percentile(99, now)
        self._adapt(now, p99)
        self.log.record_tick(
            now,
            query_index,
            self.current_rate(),
            p99,
            self._backlog_hwm,
            self.accepted,
            self.shed,
            self.window.rate(now) * self.queue_cap,
        )
        self._backlog_hwm = 0.0

    # -- subclass hooks ----------------------------------------------------
    def _decide(self, now: float, backlog: float) -> Optional[str]:
        """Policy gate for a query already under the queue cap."""
        return None

    def _adapt(self, now: float, p99: float) -> None:
        """Adjust internal rate/state at a tick (default: nothing)."""

    def _consume(self, now: float) -> None:
        """Charge one admitted query (default: nothing)."""

    def current_rate(self) -> float:
        """The policy's token rate, NaN for rateless policies."""
        return math.nan

    def signal(self, now: float) -> float:
        """The gating signal recorded with shed events, NaN by default."""
        return math.nan

    def meta(self) -> dict:
        """Archive meta for this policy's :class:`ShedLog`."""
        return self.log.meta(
            policy=self.name,
            window=self.window.duration,
            slo=self.slo,
            queue_cap=self.queue_cap,
        )
