"""The exact numpy kernel: the differential oracle.

This is byte-for-byte the sweep block that lived inline in
``_FastBatch.run`` before the kernel seam existed -- the same numpy
operations in the same order on the same arrays, so its decisions (and
the float arithmetic behind them) are bit-identical to the per-query
reference path.  Every other kernel is measured against it.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .base import PqEntry, SweepKernel, SweepState, assignment_at

__all__ = ["ExactNumpyKernel"]


class ExactNumpyKernel(SweepKernel):
    """Algorithm 1's sweep, vectorised, bit-identical to the reference path.

    Estimates are ``(max(busy - now, 0) + fixed) + work*dataset/speed`` in
    exactly the reference estimator's float-op order; the sweep gathers
    each ring's estimates through the precomputed owner timeline, takes
    the min across rings and the max across query points, and picks the
    first configuration attaining the global minimum among evaluated ones
    ("strictly better, first wins").  This kernel *is* the oracle: the
    engine's pre-refactor inline code, moved verbatim.
    """

    name = "exact_numpy"
    exact = True
    description = "bit-exact vectorised sweep (the oracle; default)"

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        est = state.est
        # -- estimates: (backlog + fixed) + (work*dataset/speed), same
        # float-op order as FrontEnd.make_estimator -----------------------
        np.subtract(state.busy, now, out=est)
        np.maximum(est, 0.0, out=est)
        np.add(est, state.fe_fixed, out=est)
        np.add(est, entry.Q, out=est)

        # -- the precomputed sweep: gather owners, min over rings, max
        # over points, first-wins argmin over evaluated configs ------------
        if state.single_ring:
            fin = est[entry.owners[0]]
        else:
            fin = est[state.ring_lo[0] : state.ring_hi[0]][entry.owners[0]]
            for r in range(1, state.n_rings):
                other = est[state.ring_lo[r] : state.ring_hi[r]][entry.owners[r]]
                np.minimum(fin, other, out=fin)
        mk = fin.max(axis=0)
        if entry.noeval.size:
            mk[entry.noeval] = np.inf
        best = int(mk.argmin())
        start_id = entry.csi[best]

        g_list, pts = assignment_at(state, entry, est, start_id)
        return g_list, pts, start_id
