/* The compiled scheduling kernel: Algorithm 1's precomputed sweep in C,
 * plus the fused per-chunk commit stage.
 *
 * roar_sweep_select replaces the engine's per-query scheduling block --
 * estimate evaluation, the owner-timeline sweep (gather / min across
 * rings / max across points / first-wins argmin across evaluated
 * configurations), and the final assignment re-derivation by binary
 * search.  roar_commit_batch goes further: it consumes a whole chunk of
 * queries per call, running the sweep AND the closed-form commit for
 * each -- sub-query widths, the front-end reserve, queue submit, EWMA
 * speed observation, and the q_over_s write-through -- against the live
 * mirror arrays, emitting the per-sub-query chunk-buffer rows in bulk
 * for the engine's numpy flush.  Every float operation replicates the
 * python engine's order exactly (IEEE-754 doubles, same comparisons,
 * same tie-breaking; the build passes -ffp-contract=off so the EWMA's
 * a*b + c*d cannot be contracted into an FMA), so the results are
 * bit-identical; the speedup comes from fusing per-query python
 * interpretation and ~10 numpy dispatches into one pass per chunk.
 *
 * The library is plain C with no Python.h dependency: it is built with
 * the system C compiler into a shared object and driven through ctypes
 * (see repro/kernels/compiled.py), which is what lets `repro[fast]`
 * degrade gracefully to the pure-python oracle when no toolchain exists.
 *
 * ABI notes: `owners` is the (n_rings, pq, n_configs) C-contiguous owner
 * timeline of ring-LOCAL node indices; `ring_lo[r]` maps them to global
 * server indices (the order of `busy` / `q_over_s` / `starts_flat`).
 * `starts_flat` holds each ring's sorted node start positions in that
 * same global order.  All int buffers are int64 (numpy intp on LP64).
 */

#include <math.h>
#include <stdint.h>

/* The reference estimator: (max(busy - now, 0) + fixed) + work*d/speed.
 * A pure function of per-server state, evaluated lazily at gather sites:
 * the sweep touches each server O(1) times (init + its events), so
 * computing on demand beats materialising all n estimates up front. */
static inline double est_of(
    const double *busy, const double *q_over_s, double now, double fe_fixed,
    int64_t i)
{
    double e = busy[i] - now;
    if (e < 0.0) {
        e = 0.0;
    }
    return (e + fe_fixed) + q_over_s[i];
}

/* bisect_right: first index in a[0..len) with v < a[index]. */
static int64_t upper_bound(const double *a, int64_t len, double v) {
    int64_t lo = 0, hi = len;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (v < a[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

/* All per-query-invariant inputs, filled once per (state, entry) pair by
 * the ctypes driver; per query the foreign call then marshals just two
 * arguments (block pointer + now), which matters at ~8 us/sweep. */
typedef struct {
    const double *busy;            /* [n] live queue mirror                */
    const double *q_over_s;        /* [n] work*dataset/speed_estimate      */
    double fe_fixed;
    int64_t n;
    const int64_t *owners;         /* [n_rings*pq*n_configs] ring-local    */
    const int64_t *ring_lo;        /* [n_rings] global index of ring start */
    const int64_t *ring_hi;        /* [n_rings] global index past ring end */
    int64_t n_rings;
    int64_t pq;
    int64_t n_configs;
    const uint8_t *evaluated;      /* [n_configs] heap-evaluated mask      */
    const double *config_start_id; /* [n_configs] candidate start ids      */
    const double *offs;            /* [pq] query point offsets i/pq        */
    const double *starts_flat;     /* [n] node starts, global order        */
    const int64_t *ev_offsets;     /* [n_configs+1] config -> event span   */
    const int64_t *ev_ring;        /* [n_events] differential encoding of  */
    const int64_t *ev_point;       /* [n_events] the owner timelines (see  */
    const int64_t *ev_owner;       /* [n_events] KernelPack)               */
    double *cur;                   /* [pq] scratch: current point values   */
    int64_t *owner_cur;            /* [n_rings*pq] scratch: current owners */
    int64_t *g_out;                /* [pq] out: global server indices      */
    double *pts_out;               /* [pq] out: query points               */
    double *start_id_out;          /* [1]  out: chosen start id            */
} roar_sweep_args;

int64_t roar_sweep_select(const roar_sweep_args *a, double now)
{
    const double *busy = a->busy;
    const double *q_over_s = a->q_over_s;
    const double fe_fixed = a->fe_fixed;
    const int64_t n = a->n;
    const int64_t *owners = a->owners;
    const int64_t *ring_lo = a->ring_lo;
    const int64_t *ring_hi = a->ring_hi;
    const int64_t n_rings = a->n_rings;
    const int64_t pq = a->pq;
    const int64_t n_configs = a->n_configs;
    const uint8_t *evaluated = a->evaluated;
    const double *config_start_id = a->config_start_id;
    const double *offs = a->offs;
    const double *starts_flat = a->starts_flat;
    int64_t *g_out = a->g_out;
    double *pts_out = a->pts_out;
    double *start_id_out = a->start_id_out;
    int64_t i, r, p, c;
    (void)n;

    /* the sweep, walked incrementally: a (ring, point) chain's owner is
     * piecewise-constant along the config axis, so config c differs from
     * c-1 only by the owner changes in ev_*[ev_offsets[c]..ev_offsets[c+1]).
     * Maintain the per-point values (min across rings) and re-derive the
     * makespan (max across points) per config -- O(events + configs * pq)
     * scratch-resident work instead of re-gathering the whole timeline.
     * The values are the identical doubles the full gather would produce,
     * and the first strict minimum among evaluated configs is kept, so the
     * selection replicates np.argmin over the inf-masked makespans. */
    const int64_t ring_stride = pq * n_configs;
    const int64_t *ev_o = a->ev_offsets;
    const int64_t *evr = a->ev_ring;
    const int64_t *evp = a->ev_point;
    const int64_t *evw = a->ev_owner;
    double *cur = a->cur;
    int64_t *owner_cur = a->owner_cur;
    for (p = 0; p < pq; p++) {
        double f = est_of(busy, q_over_s, now, fe_fixed,
                          ring_lo[0] + owners[p * n_configs]);
        owner_cur[p] = owners[p * n_configs];
        for (r = 1; r < n_rings; r++) {
            int64_t o_idx = owners[r * ring_stride + p * n_configs];
            owner_cur[r * pq + p] = o_idx;
            double o = est_of(busy, q_over_s, now, fe_fixed,
                              ring_lo[r] + o_idx);
            if (o < f) {
                f = o;
            }
        }
        cur[p] = f;
    }
    /* running makespan: rescan the pq points only when the previous max
     * holder's value drops (values stay bit-identical either way) */
    double mk = cur[0];
    for (p = 1; p < pq; p++) {
        if (cur[p] > mk) {
            mk = cur[p];
        }
    }
    double best_mk = INFINITY;
    int64_t best = 0;
    for (c = 0; c < n_configs; c++) {
        if (c > 0) {
            for (i = ev_o[c]; i < ev_o[c + 1]; i++) {
                const int64_t r_i = evr[i];
                const int64_t p_i = evp[i];
                owner_cur[r_i * pq + p_i] = evw[i];
                double f = est_of(busy, q_over_s, now, fe_fixed,
                                  ring_lo[0] + owner_cur[p_i]);
                for (r = 1; r < n_rings; r++) {
                    double o = est_of(busy, q_over_s, now, fe_fixed,
                                      ring_lo[r] + owner_cur[r * pq + p_i]);
                    if (o < f) {
                        f = o;
                    }
                }
                const double old = cur[p_i];
                cur[p_i] = f;
                if (f >= mk) {
                    mk = f;
                } else if (old == mk) {
                    mk = cur[0];
                    for (p = 1; p < pq; p++) {
                        if (cur[p] > mk) {
                            mk = cur[p];
                        }
                    }
                }
            }
        }
        if (evaluated[c] && mk < best_mk) {
            best_mk = mk;
            best = c;
        }
    }
    const double start_id = config_start_id[best];
    *start_id_out = start_id;

    /* final assignment re-derived at start_id: binary search per point,
     * min-estimate ring wins strictly-first */
    for (p = 0; p < pq; p++) {
        double v = fmod(start_id + offs[p], 1.0);
        if (v < 0.0) {
            v += 1.0;
        }
        if (v >= 1.0) {
            v -= 1.0;
        }
        pts_out[p] = v;
        if (n_rings == 1) {
            int64_t len = ring_hi[0] - ring_lo[0];
            int64_t idx = upper_bound(starts_flat + ring_lo[0], len, v) - 1;
            if (idx < 0) {
                idx = len - 1;
            }
            g_out[p] = ring_lo[0] + idx;
        } else {
            int64_t best_g = -1;
            double best_fin = INFINITY;
            for (r = 0; r < n_rings; r++) {
                int64_t len = ring_hi[r] - ring_lo[r];
                int64_t idx = upper_bound(starts_flat + ring_lo[r], len, v) - 1;
                if (idx < 0) {
                    idx = len - 1;
                }
                int64_t g = ring_lo[r] + idx;
                double fin_v = est_of(busy, q_over_s, now, fe_fixed, g);
                if (fin_v < best_fin) {
                    best_fin = fin_v;
                    best_g = g;
                }
            }
            g_out[p] = best_g;
        }
    }
    return best;
}

/* -- the fused commit stage ------------------------------------------------
 *
 * Everything the python engine does between the scheduling decision and
 * the chunk flush is closed-form per-server float arithmetic: sub-query
 * widths from the chosen start id, the front-end's FIFO reserve, the
 * LIFO queue submit with EWMA speed observation, and the q_over_s
 * write-through that keeps the estimate quotient fresh for the next
 * query's sweep.  roar_commit_batch runs sweep + commit for a whole
 * chunk of queries in one call, advancing the live mirrors (`busy_mut`,
 * `spd`, `q_over_s_mut`) in place and emitting the per-sub-query rows
 * (server, service, work, finish, start; submit order) plus the
 * per-query reductions (total delay, max wait, max service) into the
 * engine-owned out buffers consumed by the numpy flush.
 *
 * Exactness: each operation replicates the python engine's scalar float
 * ops in the same order (see _Engine._run_span in sim/fastpath.py and
 * SweepKernel.commit_batch in kernels/base.py); any divergence from the
 * exact_numpy oracle is a bug.  The caller guarantees no server in the
 * span's schedules is failed (the engine never enters the fused path
 * inside a failure window) and that pq is constant across the span.
 */
typedef struct {
    roar_sweep_args sweep;         /* embedded; its busy/q_over_s alias   */
                                   /* busy_mut/q_over_s_mut below         */
    const double *srv_fixed;       /* [n] per-server fixed overhead       */
    const double *srv_speed;       /* [n] true server speeds (submit)     */
    double alpha;                  /* EWMA weight of the new observation  */
    double om_alpha;               /* 1 - alpha                           */
    double dataset;                /* dataset size (work = width*dataset) */
    double wd;                     /* work*dataset of this pq entry       */
    double off0;                   /* -1/pq (first width wraps from here) */
    const double *arrivals;        /* [n_total] full-batch arrival times  */
    const double *rtts;            /* [>=nq] span's pregenerated RTT draws */
    double *busy_mut;              /* [n] live queue mirror, writable     */
    double *spd;                   /* [n] live EWMA speed mirror          */
    double *q_over_s_mut;          /* [n] wd/spd quotient, kept fresh     */
    double *wbuf;                  /* [pq] scratch: sub-query widths      */
    int64_t *res_g;                /* [pq] out: last query's reserve keys */
    double *res_v;                 /* [pq] out: last query's reserve vals */
    int64_t *res_n;                /* [1]  out: reserve entry count       */
    int64_t *sub_g;                /* [cap*pq] out: global server index   */
    double *sub_service;           /* [cap*pq] out: service time          */
    double *sub_work;              /* [cap*pq] out: objects matched       */
    double *sub_finish;            /* [cap*pq] out: finish time           */
    double *sub_start;             /* [cap*pq] out: execution start       */
    double *q_total;               /* [cap] out: finish - now             */
    double *q_mw;                  /* [cap] out: max sub-query wait       */
    double *q_ms;                  /* [cap] out: max sub-query service    */
} roar_commit_args;

int64_t roar_commit_batch(const roar_commit_args *a, int64_t start,
                          int64_t nq)
{
    const roar_sweep_args *sw = &a->sweep;
    const int64_t pq = sw->pq;
    const double fe_fixed = sw->fe_fixed;
    const int64_t *g_list = sw->g_out;
    const double *pts = sw->pts_out;
    const double *srv_fixed = a->srv_fixed;
    const double *srv_speed = a->srv_speed;
    const double alpha = a->alpha, om_alpha = a->om_alpha;
    const double dataset = a->dataset, wd = a->wd, off0 = a->off0;
    double *busy = a->busy_mut;
    double *spd = a->spd;
    double *q_over_s = a->q_over_s_mut;
    double *wbuf = a->wbuf;
    int64_t *res_g = a->res_g;
    double *res_v = a->res_v;
    int64_t si = 0;
    int64_t k, i, j;

    for (k = 0; k < nq; k++) {
        const double now = a->arrivals[start + k];
        const double rtt = a->rtts[k];
        (void)roar_sweep_select(sw, now);
        const double start_id = sw->start_id_out[0];

        /* widths + reserve (FIFO over sub-queries; the first occurrence
         * of a server syncs the live queue, repeats accumulate) */
        double v = fmod(start_id + off0, 1.0);
        if (v < 0.0) {
            v += 1.0;
        }
        if (v >= 1.0) {
            v -= 1.0;
        }
        double prev = v;
        int64_t rn = 0;
        for (i = 0; i < pq; i++) {
            const double d = pts[i];
            double w = fmod(d - prev, 1.0);
            if (w < 0.0) {
                w += 1.0;
            }
            if (w >= 1.0) {
                w -= 1.0;
            }
            wbuf[i] = w;
            prev = d;
            const int64_t g = g_list[i];
            const double spd_g = spd[g];
            const double service =
                fe_fixed + (w * dataset) / (spd_g > 1e-9 ? spd_g : 1e-9);
            int64_t slot = -1;
            for (j = 0; j < rn; j++) {  /* pq is small: linear map */
                if (res_g[j] == g) {
                    slot = j;
                    break;
                }
            }
            double base;
            if (slot < 0) {
                base = busy[g];
                slot = rn;
                res_g[rn++] = g;
            } else {
                base = res_v[slot];
            }
            res_v[slot] = (base > now ? base : now) + service;
        }
        *a->res_n = rn;

        /* submit + EWMA observe (LIFO: the reference path pops) */
        double finish = now, mw = 0.0, ms = 0.0;
        const double half = rtt / 2.0;
        const double arr_t = now + half;
        for (i = pq - 1; i >= 0; i--) {
            const int64_t g = g_list[i];
            const double work = wbuf[i] * dataset;
            const double b = busy[g];
            double wait = b - now;
            if (wait < 0.0) {
                wait = 0.0;
            }
            const double start_t = arr_t > b ? arr_t : b;
            const double service = srv_fixed[g] + work / srv_speed[g];
            const double f = start_t + service;
            busy[g] = f;
            a->sub_g[si] = g;
            a->sub_service[si] = service;
            a->sub_work[si] = work;
            a->sub_finish[si] = f;
            a->sub_start[si] = start_t;
            si++;
            const double eff = service - fe_fixed;
            if (eff > 0.0 && work > 0.0) {
                spd[g] = om_alpha * spd[g] + alpha * (work / eff);
            }
            const double fh = f + half;
            if (fh > finish) {
                finish = fh;
            }
            if (wait > mw) {
                mw = wait;
            }
            if (service > ms) {
                ms = service;
            }
        }

        /* write-through: q_over_s tracks wd/spd for the touched servers
         * (only the final per-server speed matters to the next sweep) */
        for (j = 0; j < rn; j++) {
            const int64_t g = res_g[j];
            q_over_s[g] = wd / spd[g];
        }
        a->q_total[k] = finish - now;
        a->q_mw[k] = mw;
        a->q_ms[k] = ms;
    }
    return nq;
}

/* Build-probe symbol so the loader can verify the ABI revision it built. */
int64_t roar_sweep_abi_version(void) { return 2; }
