/* The compiled scheduling kernel: Algorithm 1's precomputed sweep in C.
 *
 * One call replaces the engine's whole per-query scheduling block --
 * estimate evaluation, the owner-timeline sweep (gather / min across
 * rings / max across points / first-wins argmin across evaluated
 * configurations), and the final assignment re-derivation by binary
 * search.  Every float operation replicates the numpy oracle's order
 * exactly (IEEE-754 doubles, same comparisons, same tie-breaking), so
 * the result is bit-identical; the speedup comes from fusing ~10 numpy
 * dispatches and their temporaries into one pass with no allocation.
 *
 * The library is plain C with no Python.h dependency: it is built with
 * the system C compiler into a shared object and driven through ctypes
 * (see repro/kernels/compiled.py), which is what lets `repro[fast]`
 * degrade gracefully to the pure-python oracle when no toolchain exists.
 *
 * ABI notes: `owners` is the (n_rings, pq, n_configs) C-contiguous owner
 * timeline of ring-LOCAL node indices; `ring_lo[r]` maps them to global
 * server indices (the order of `busy` / `q_over_s` / `starts_flat`).
 * `starts_flat` holds each ring's sorted node start positions in that
 * same global order.  All int buffers are int64 (numpy intp on LP64).
 */

#include <math.h>
#include <stdint.h>

/* The reference estimator: (max(busy - now, 0) + fixed) + work*d/speed.
 * A pure function of per-server state, evaluated lazily at gather sites:
 * the sweep touches each server O(1) times (init + its events), so
 * computing on demand beats materialising all n estimates up front. */
static inline double est_of(
    const double *busy, const double *q_over_s, double now, double fe_fixed,
    int64_t i)
{
    double e = busy[i] - now;
    if (e < 0.0) {
        e = 0.0;
    }
    return (e + fe_fixed) + q_over_s[i];
}

/* bisect_right: first index in a[0..len) with v < a[index]. */
static int64_t upper_bound(const double *a, int64_t len, double v) {
    int64_t lo = 0, hi = len;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (v < a[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

/* All per-query-invariant inputs, filled once per (state, entry) pair by
 * the ctypes driver; per query the foreign call then marshals just two
 * arguments (block pointer + now), which matters at ~8 us/sweep. */
typedef struct {
    const double *busy;            /* [n] live queue mirror                */
    const double *q_over_s;        /* [n] work*dataset/speed_estimate      */
    double fe_fixed;
    int64_t n;
    const int64_t *owners;         /* [n_rings*pq*n_configs] ring-local    */
    const int64_t *ring_lo;        /* [n_rings] global index of ring start */
    const int64_t *ring_hi;        /* [n_rings] global index past ring end */
    int64_t n_rings;
    int64_t pq;
    int64_t n_configs;
    const uint8_t *evaluated;      /* [n_configs] heap-evaluated mask      */
    const double *config_start_id; /* [n_configs] candidate start ids      */
    const double *offs;            /* [pq] query point offsets i/pq        */
    const double *starts_flat;     /* [n] node starts, global order        */
    const int64_t *ev_offsets;     /* [n_configs+1] config -> event span   */
    const int64_t *ev_ring;        /* [n_events] differential encoding of  */
    const int64_t *ev_point;       /* [n_events] the owner timelines (see  */
    const int64_t *ev_owner;       /* [n_events] KernelPack)               */
    double *cur;                   /* [pq] scratch: current point values   */
    int64_t *owner_cur;            /* [n_rings*pq] scratch: current owners */
    int64_t *g_out;                /* [pq] out: global server indices      */
    double *pts_out;               /* [pq] out: query points               */
    double *start_id_out;          /* [1]  out: chosen start id            */
} roar_sweep_args;

int64_t roar_sweep_select(const roar_sweep_args *a, double now)
{
    const double *busy = a->busy;
    const double *q_over_s = a->q_over_s;
    const double fe_fixed = a->fe_fixed;
    const int64_t n = a->n;
    const int64_t *owners = a->owners;
    const int64_t *ring_lo = a->ring_lo;
    const int64_t *ring_hi = a->ring_hi;
    const int64_t n_rings = a->n_rings;
    const int64_t pq = a->pq;
    const int64_t n_configs = a->n_configs;
    const uint8_t *evaluated = a->evaluated;
    const double *config_start_id = a->config_start_id;
    const double *offs = a->offs;
    const double *starts_flat = a->starts_flat;
    int64_t *g_out = a->g_out;
    double *pts_out = a->pts_out;
    double *start_id_out = a->start_id_out;
    int64_t i, r, p, c;
    (void)n;

    /* the sweep, walked incrementally: a (ring, point) chain's owner is
     * piecewise-constant along the config axis, so config c differs from
     * c-1 only by the owner changes in ev_*[ev_offsets[c]..ev_offsets[c+1]).
     * Maintain the per-point values (min across rings) and re-derive the
     * makespan (max across points) per config -- O(events + configs * pq)
     * scratch-resident work instead of re-gathering the whole timeline.
     * The values are the identical doubles the full gather would produce,
     * and the first strict minimum among evaluated configs is kept, so the
     * selection replicates np.argmin over the inf-masked makespans. */
    const int64_t ring_stride = pq * n_configs;
    const int64_t *ev_o = a->ev_offsets;
    const int64_t *evr = a->ev_ring;
    const int64_t *evp = a->ev_point;
    const int64_t *evw = a->ev_owner;
    double *cur = a->cur;
    int64_t *owner_cur = a->owner_cur;
    for (p = 0; p < pq; p++) {
        double f = est_of(busy, q_over_s, now, fe_fixed,
                          ring_lo[0] + owners[p * n_configs]);
        owner_cur[p] = owners[p * n_configs];
        for (r = 1; r < n_rings; r++) {
            int64_t o_idx = owners[r * ring_stride + p * n_configs];
            owner_cur[r * pq + p] = o_idx;
            double o = est_of(busy, q_over_s, now, fe_fixed,
                              ring_lo[r] + o_idx);
            if (o < f) {
                f = o;
            }
        }
        cur[p] = f;
    }
    /* running makespan: rescan the pq points only when the previous max
     * holder's value drops (values stay bit-identical either way) */
    double mk = cur[0];
    for (p = 1; p < pq; p++) {
        if (cur[p] > mk) {
            mk = cur[p];
        }
    }
    double best_mk = INFINITY;
    int64_t best = 0;
    for (c = 0; c < n_configs; c++) {
        if (c > 0) {
            for (i = ev_o[c]; i < ev_o[c + 1]; i++) {
                const int64_t r_i = evr[i];
                const int64_t p_i = evp[i];
                owner_cur[r_i * pq + p_i] = evw[i];
                double f = est_of(busy, q_over_s, now, fe_fixed,
                                  ring_lo[0] + owner_cur[p_i]);
                for (r = 1; r < n_rings; r++) {
                    double o = est_of(busy, q_over_s, now, fe_fixed,
                                      ring_lo[r] + owner_cur[r * pq + p_i]);
                    if (o < f) {
                        f = o;
                    }
                }
                const double old = cur[p_i];
                cur[p_i] = f;
                if (f >= mk) {
                    mk = f;
                } else if (old == mk) {
                    mk = cur[0];
                    for (p = 1; p < pq; p++) {
                        if (cur[p] > mk) {
                            mk = cur[p];
                        }
                    }
                }
            }
        }
        if (evaluated[c] && mk < best_mk) {
            best_mk = mk;
            best = c;
        }
    }
    const double start_id = config_start_id[best];
    *start_id_out = start_id;

    /* final assignment re-derived at start_id: binary search per point,
     * min-estimate ring wins strictly-first */
    for (p = 0; p < pq; p++) {
        double v = fmod(start_id + offs[p], 1.0);
        if (v < 0.0) {
            v += 1.0;
        }
        if (v >= 1.0) {
            v -= 1.0;
        }
        pts_out[p] = v;
        if (n_rings == 1) {
            int64_t len = ring_hi[0] - ring_lo[0];
            int64_t idx = upper_bound(starts_flat + ring_lo[0], len, v) - 1;
            if (idx < 0) {
                idx = len - 1;
            }
            g_out[p] = ring_lo[0] + idx;
        } else {
            int64_t best_g = -1;
            double best_fin = INFINITY;
            for (r = 0; r < n_rings; r++) {
                int64_t len = ring_hi[r] - ring_lo[r];
                int64_t idx = upper_bound(starts_flat + ring_lo[r], len, v) - 1;
                if (idx < 0) {
                    idx = len - 1;
                }
                int64_t g = ring_lo[r] + idx;
                double fin_v = est_of(busy, q_over_s, now, fe_fixed, g);
                if (fin_v < best_fin) {
                    best_fin = fin_v;
                    best_g = g;
                }
            }
            g_out[p] = best_g;
        }
    }
    return best;
}

/* Build-probe symbol so the loader can verify the ABI revision it built. */
int64_t roar_sweep_abi_version(void) { return 1; }
