"""Pluggable scheduling kernels behind the differential oracle.

The batched query engine evaluates Algorithm 1's rotation sweep once per
query; this package turns that evaluation into a swappable component with
a narrow ABI (:class:`~repro.kernels.base.SweepKernel`), a registry, and
three built-in implementations:

* ``exact_numpy`` -- the engine's original vectorised sweep, byte for
  byte; bit-identical to the per-query reference path and therefore the
  **oracle** every other kernel is measured against (the default);
* ``compiled``    -- the same arithmetic fused into one C call (built on
  first use against the system toolchain, graceful fallback without one);
* ``approx_topk`` -- a strided/refined sampled argmin with a documented
  deviation bound.

:mod:`repro.kernels.divergence` is the differential harness: it runs any
kernel against ``exact_numpy`` over the 8-scenario builtin battery and
reports config divergence and latency-deviation percentiles, which is how
inexact kernels prove they stay inside their stated contract.
"""

from .base import (
    CommitBuffers,
    CommitPlan,
    DeviationBound,
    KernelUnavailableError,
    PqEntry,
    SweepKernel,
    SweepState,
    assignment_at,
)
from .registry import (
    DEFAULT_KERNEL,
    available_kernels,
    get_kernel,
    kernel_available,
    kernel_names,
    kernel_specs,
    register_kernel,
)

__all__ = [
    "DEFAULT_KERNEL",
    "CommitBuffers",
    "CommitPlan",
    "DeviationBound",
    "KernelUnavailableError",
    "PqEntry",
    "SweepKernel",
    "SweepState",
    "assignment_at",
    "available_kernels",
    "get_kernel",
    "kernel_available",
    "kernel_names",
    "kernel_specs",
    "register_kernel",
]
