"""The scheduling-kernel ABI: the narrow seam the batched engine schedules through.

The batched query engine (:mod:`repro.sim.fastpath`) spends roughly half of
its per-query budget inside one block: evaluate every server's finish
estimate, replay the precomputed rotation sweep (gather owners, min across
rings, max across points, first-wins argmin across evaluated
configurations), and re-derive the final assignment at the winning start
id.  Everything else in the engine is accounting.  This module names that
block as an interface -- :class:`SweepKernel` -- so implementations can
compete on speed or trade exactness for speed *behind a stated contract*,
while the engine, the accounting, and the failure fall-back stay shared.

The ABI (``SweepKernel.select(state, entry, now) -> (server_set, points,
start_id)``) is deliberately narrow:

* ``state`` is a :class:`SweepState`: the engine's always-fresh per-server
  mirrors (busy-until, a scratch estimate buffer) plus the static ring
  geometry of the current batch segment.  The engine rebuilds it whenever
  an action may have moved membership and calls :meth:`SweepKernel.bind`
  so kernels can re-derive cached views (e.g. raw pointers).
* ``entry`` is a :class:`PqEntry`: per-(rings, pq) static data resolved
  from the :class:`~repro.core.covertable.CoverTable`, including the
  pre-divided work/speed quotients the estimate needs.
* the return value is the *complete* scheduling decision: global server
  indices per sub-query, the query points, and the chosen start id.  The
  engine commits it without re-deriving anything, so a kernel's choice is
  exactly what executes.

Exactness contract: a kernel with ``exact = True`` promises bit-identical
decisions to :class:`~repro.kernels.exact.ExactNumpyKernel` (the oracle,
which is byte-for-byte the engine's original inline code).  A kernel with
``exact = False`` must document its deviation bound in its docstring as a
:class:`DeviationBound`, and the differential harness
(:mod:`repro.kernels.divergence`) measures it against the oracle on the
builtin scenario battery.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from ..core.covertable import CoverTable

__all__ = [
    "DeviationBound",
    "KernelUnavailableError",
    "PqEntry",
    "SweepKernel",
    "SweepState",
    "assignment_at",
]


class KernelUnavailableError(RuntimeError):
    """A kernel cannot run in this environment (e.g. no C toolchain)."""


@dataclass(frozen=True)
class DeviationBound:
    """The documented contract of an inexact kernel.

    Measured by :mod:`repro.kernels.divergence` on the 8-scenario builtin
    battery; the kernel's tests assert every scenario stays inside it.
    Two kinds of guarantee, because they behave very differently:

    **Per-decision** (the approximation itself, measured shadow-style on
    identical engine state):

    * ``decision_divergence`` -- maximum fraction of per-query decisions
      that pick a different server set than the oracle *given the same
      mirrors*;
    * ``makespan_regret_p99`` -- maximum 99th percentile of the relative
      predicted-makespan excess of the kernel's choice over the oracle's
      on the same state (>= 0 by construction when the kernel examines a
      subset of the oracle's candidates).

    **End-to-end trajectory** (what a user of the approximate mode
    experiences; necessarily looser, since one divergent choice perturbs
    queue state and compounds):

    * ``latency_rel_p99`` -- maximum 99th percentile of per-query relative
      completion-latency deviation ``|d_k - d_oracle| / d_oracle`` between
      independent runs of the two kernels;
    * ``mean_delay_rel`` -- maximum relative deviation of the run-level
      mean completion latency.
    """

    decision_divergence: float
    makespan_regret_p99: float
    latency_rel_p99: float
    mean_delay_rel: float


class SweepState:
    """Per-batch-segment view the engine hands every ``select`` call.

    Rebuilt (a fresh instance) whenever an action may have changed ring
    membership; the arrays inside are the engine's live mirrors, updated in
    place between queries, so a kernel may cache the *objects* (or their
    raw pointers) for the lifetime of one state and trust their contents
    to be exact at every call.
    """

    __slots__ = (
        "busy",
        "est",
        "fe_fixed",
        "n",
        "ring_lo",
        "ring_hi",
        "ring_starts",
        "n_rings",
        "single_ring",
    )

    def __init__(
        self,
        busy: "np.ndarray",
        est: "np.ndarray",
        fe_fixed: float,
        ring_lo: Sequence[int],
        ring_hi: Sequence[int],
        ring_starts: Sequence[Sequence[float]],
    ) -> None:
        self.busy = busy
        self.est = est
        self.fe_fixed = fe_fixed
        self.n = len(busy)
        self.ring_lo = list(ring_lo)
        self.ring_hi = list(ring_hi)
        self.ring_starts = [list(s) for s in ring_starts]
        self.n_rings = len(self.ring_lo)
        self.single_ring = self.n_rings == 1


class PqEntry:
    """Per-(rings, pq) static data resolved once per batch segment.

    Thin, kernel-facing repackaging of a
    :class:`~repro.core.covertable.CoverTable`: owner timelines per ring,
    the non-evaluated configuration indices, candidate start ids, the query
    point offsets, and ``Q = work * dataset / speed_estimate`` -- the one
    mutable array, maintained scatter-wise by the engine on every EWMA
    update so the per-query estimate costs two adds on top of the backlog
    clip.  ``ext`` is scratch space for kernels to stash derived caches
    (compiled pointer blocks, strided sample views) keyed by kernel name.
    """

    __slots__ = (
        "table",
        "owners",
        "noeval",
        "csi",
        "offs",
        "off0",
        "wd",
        "Q",
        "iterations",
        "estimates",
        "ext",
    )

    def __init__(
        self, table: "CoverTable", pq: int, dataset: float, spd: "np.ndarray"
    ) -> None:
        self.table = table
        #: per-ring (pq, n_configs) owner timelines, ring-local indices.
        self.owners = [rt.owner_timeline for rt in table.ring_tables]
        self.noeval = np.nonzero(~table.evaluated)[0]
        self.csi = table.config_start_id.tolist()
        self.offs = [i / pq for i in range(pq)]
        self.off0 = -1.0 / pq
        self.wd = table.work * dataset
        #: wd / speed_estimate, maintained scatter-wise on EWMA updates so
        #: the per-query estimate is two adds on top of the backlog clip.
        self.Q = np.divide(self.wd, spd)
        self.iterations = table.iterations
        self.estimates = table.estimates
        self.ext: dict[str, object] = {}

    @property
    def pq(self) -> int:
        return self.table.pq

    @property
    def n_configs(self) -> int:
        return len(self.csi)


def assignment_at(
    state: SweepState, entry: PqEntry, est: "np.ndarray", start_id: float
) -> tuple[list[int], list[float]]:
    """Re-derive the final assignment at *start_id* (shared, exact).

    Binary search per query point; on multiple rings the ring with the
    strictly smallest estimate wins, first ring on ties -- byte-for-byte
    the reference path's closing ``assignment_at()``.  Returns
    ``(server_set, points)`` with *server_set* as global server indices.
    """
    fmod = math.fmod
    pts: list[float] = []
    for off in entry.offs:
        v = fmod(start_id + off, 1.0)
        if v < 0.0:
            v += 1.0
        if v >= 1.0:
            v -= 1.0
        pts.append(v)
    if state.single_ring:
        starts = state.ring_starts[0]
        last = len(starts) - 1
        g_list = [
            idx if (idx := bisect_right(starts, v) - 1) >= 0 else last
            for v in pts
        ]
    else:
        inf = math.inf
        g_list = []
        for v in pts:
            best_g = -1
            best_fin = inf
            for r in range(state.n_rings):
                starts = state.ring_starts[r]
                idx = bisect_right(starts, v) - 1
                if idx < 0:
                    idx = len(starts) - 1
                g = state.ring_lo[r] + idx
                fin_v = float(est[g])
                if fin_v < best_fin:
                    best_fin = fin_v
                    best_g = g
            g_list.append(best_g)
    return g_list, pts


class SweepKernel:
    """Base class of every scheduling kernel.

    Subclasses set ``name`` (the registry key) and ``exact`` (the
    bit-identical promise), and implement :meth:`select`.  ``bind`` is an
    optional hook called whenever the engine's :class:`SweepState` is
    rebuilt -- kernels holding derived caches (pointers, strided views)
    refresh them there.
    """

    name: ClassVar[str] = "abstract"
    exact: ClassVar[bool] = False
    #: one-line human description for ``repro kernels``.
    description: ClassVar[str] = ""

    def bind(self, state: SweepState) -> None:  # pragma: no cover - hook
        """Called when the engine (re)builds its mirrors."""

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        """Schedule one query: ``-> (server_set, points, start_id)``.

        *server_set* holds global server indices, one per sub-query point.
        The engine never reads ``state.est`` after the call -- it is a
        scratch buffer kernels may use (the numpy kernels evaluate all n
        estimates into it; the compiled kernel computes estimates lazily
        at its gather sites and leaves it untouched).
        """
        raise NotImplementedError
