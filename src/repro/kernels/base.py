"""The scheduling-kernel ABI: the narrow seam the batched engine schedules through.

The batched query engine (:mod:`repro.sim.fastpath`) spends roughly half of
its per-query budget inside one block: evaluate every server's finish
estimate, replay the precomputed rotation sweep (gather owners, min across
rings, max across points, first-wins argmin across evaluated
configurations), and re-derive the final assignment at the winning start
id.  Everything else in the engine is accounting.  This module names that
block as an interface -- :class:`SweepKernel` -- so implementations can
compete on speed or trade exactness for speed *behind a stated contract*,
while the engine, the accounting, and the failure fall-back stay shared.

The ABI (``SweepKernel.select(state, entry, now) -> (server_set, points,
start_id)``) is deliberately narrow:

* ``state`` is a :class:`SweepState`: the engine's always-fresh per-server
  mirrors (busy-until, a scratch estimate buffer) plus the static ring
  geometry of the current batch segment.  The engine rebuilds it whenever
  an action may have moved membership and calls :meth:`SweepKernel.bind`
  so kernels can re-derive cached views (e.g. raw pointers).
* ``entry`` is a :class:`PqEntry`: per-(rings, pq) static data resolved
  from the :class:`~repro.core.covertable.CoverTable`, including the
  pre-divided work/speed quotients the estimate needs.
* the return value is the *complete* scheduling decision: global server
  indices per sub-query, the query points, and the chosen start id.  The
  engine commits it without re-deriving anything, so a kernel's choice is
  exactly what executes.

Exactness contract: a kernel with ``exact = True`` promises bit-identical
decisions to :class:`~repro.kernels.exact.ExactNumpyKernel` (the oracle,
which is byte-for-byte the engine's original inline code).  A kernel with
``exact = False`` must document its deviation bound in its docstring as a
:class:`DeviationBound`, and the differential harness
(:mod:`repro.kernels.divergence`) measures it against the oracle on the
builtin scenario battery.

**The fused sweep+commit entry point.**  Scheduling is no longer the
engine's wall: once the sweep is compiled, the remaining per-query python
is the *commit* -- sub-query widths, the front-end reserve, queue submit
with EWMA speed observation, and the mirror write-through, all closed-form
per-server float updates.  :meth:`SweepKernel.commit_batch` fuses them
with the sweep over a whole chunk of queries per call: the kernel advances
the live mirrors (``state.busy``, ``plan.spd``, ``entry.Q``) in place and
returns the per-sub-query chunk-buffer rows in bulk through a
:class:`CommitBuffers`, which the engine flushes with a handful of numpy
reductions.  The default implementation is the reference python loop
(bit-identical to the engine's inline commit by construction); the
compiled kernel overrides it with a single C call per chunk and sets
``fused_commit = True`` so the engine prefers the bulk seam even for
short spans.  The engine only enters the bulk seam outside failure
windows and with a span-constant ``pq``, so ``commit_batch`` never needs
to delegate or re-plan; the exactness contract extends to it unchanged
(``exact = True`` kernels must produce bit-identical *state*, not just
decisions).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from ..core.covertable import CoverTable

__all__ = [
    "CommitBuffers",
    "CommitPlan",
    "DeviationBound",
    "KernelUnavailableError",
    "PqEntry",
    "SweepKernel",
    "SweepState",
    "assignment_at",
]


class KernelUnavailableError(RuntimeError):
    """A kernel cannot run in this environment (e.g. no C toolchain)."""


@dataclass(frozen=True)
class DeviationBound:
    """The documented contract of an inexact kernel.

    Measured by :mod:`repro.kernels.divergence` on the 8-scenario builtin
    battery; the kernel's tests assert every scenario stays inside it.
    Two kinds of guarantee, because they behave very differently:

    **Per-decision** (the approximation itself, measured shadow-style on
    identical engine state):

    * ``decision_divergence`` -- maximum fraction of per-query decisions
      that pick a different server set than the oracle *given the same
      mirrors*;
    * ``makespan_regret_p99`` -- maximum 99th percentile of the relative
      predicted-makespan excess of the kernel's choice over the oracle's
      on the same state (>= 0 by construction when the kernel examines a
      subset of the oracle's candidates).

    **End-to-end trajectory** (what a user of the approximate mode
    experiences; necessarily looser, since one divergent choice perturbs
    queue state and compounds):

    * ``latency_rel_p99`` -- maximum 99th percentile of per-query relative
      completion-latency deviation ``|d_k - d_oracle| / d_oracle`` between
      independent runs of the two kernels;
    * ``mean_delay_rel`` -- maximum relative deviation of the run-level
      mean completion latency.
    """

    decision_divergence: float
    makespan_regret_p99: float
    latency_rel_p99: float
    mean_delay_rel: float


class SweepState:
    """Per-batch-segment view the engine hands every ``select`` call.

    Rebuilt (a fresh instance) whenever an action may have changed ring
    membership; the arrays inside are the engine's live mirrors, updated in
    place between queries, so a kernel may cache the *objects* (or their
    raw pointers) for the lifetime of one state and trust their contents
    to be exact at every call.
    """

    __slots__ = (
        "busy",
        "est",
        "fe_fixed",
        "n",
        "ring_lo",
        "ring_hi",
        "ring_starts",
        "n_rings",
        "single_ring",
    )

    def __init__(
        self,
        busy: "np.ndarray",
        est: "np.ndarray",
        fe_fixed: float,
        ring_lo: Sequence[int],
        ring_hi: Sequence[int],
        ring_starts: Sequence[Sequence[float]],
    ) -> None:
        self.busy = busy
        self.est = est
        self.fe_fixed = fe_fixed
        self.n = len(busy)
        self.ring_lo = list(ring_lo)
        self.ring_hi = list(ring_hi)
        self.ring_starts = [list(s) for s in ring_starts]
        self.n_rings = len(self.ring_lo)
        self.single_ring = self.n_rings == 1


class PqEntry:
    """Per-(rings, pq) static data resolved once per batch segment.

    Thin, kernel-facing repackaging of a
    :class:`~repro.core.covertable.CoverTable`: owner timelines per ring,
    the non-evaluated configuration indices, candidate start ids, the query
    point offsets, and ``Q = work * dataset / speed_estimate`` -- the one
    mutable array, maintained scatter-wise by the engine on every EWMA
    update so the per-query estimate costs two adds on top of the backlog
    clip.  ``ext`` is scratch space for kernels to stash derived caches
    (compiled pointer blocks, strided sample views) keyed by kernel name.
    """

    __slots__ = (
        "table",
        "owners",
        "noeval",
        "csi",
        "offs",
        "off0",
        "wd",
        "Q",
        "iterations",
        "estimates",
        "ext",
    )

    def __init__(
        self, table: "CoverTable", pq: int, dataset: float, spd: "np.ndarray"
    ) -> None:
        self.table = table
        #: per-ring (pq, n_configs) owner timelines, ring-local indices.
        self.owners = [rt.owner_timeline for rt in table.ring_tables]
        self.noeval = np.nonzero(~table.evaluated)[0]
        self.csi = table.config_start_id.tolist()
        self.offs = [i / pq for i in range(pq)]
        self.off0 = -1.0 / pq
        self.wd = table.work * dataset
        #: wd / speed_estimate, maintained scatter-wise on EWMA updates so
        #: the per-query estimate is two adds on top of the backlog clip.
        self.Q = np.divide(self.wd, spd)
        self.iterations = table.iterations
        self.estimates = table.estimates
        self.ext: dict[str, object] = {}

    @property
    def pq(self) -> int:
        return self.table.pq

    @property
    def n_configs(self) -> int:
        return len(self.csi)


class CommitPlan:
    """Per-batch commit constants and mirrors for :meth:`SweepKernel.commit_batch`.

    Built by the engine alongside :class:`SweepState` (a fresh instance per
    membership epoch).  ``spd`` is the live EWMA speed-estimate mirror --
    the commit's one mutable array beyond ``state.busy`` and ``entry.Q``;
    the ``*_l`` plain-list shadows exist so the pure-python default commit
    pays scalar float arithmetic, not numpy scalar boxing.  ``arrivals``
    is the whole batch's arrival times; spans address into it by index so
    compiled kernels can cache one raw pointer per batch.
    """

    __slots__ = (
        "arrivals",
        "arr_l",
        "spd",
        "srv_fixed",
        "srv_speed",
        "srv_fixed_l",
        "srv_speed_l",
        "alpha",
        "om_alpha",
        "dataset",
    )

    def __init__(
        self,
        arrivals: "np.ndarray",
        arr_l: list,
        spd: "np.ndarray",
        srv_fixed_l: Sequence[float],
        srv_speed_l: Sequence[float],
        alpha: float,
        om_alpha: float,
        dataset: float,
    ) -> None:
        self.arrivals = arrivals
        self.arr_l = arr_l
        self.spd = spd
        self.srv_fixed = np.asarray(srv_fixed_l, dtype=np.float64)
        self.srv_speed = np.asarray(srv_speed_l, dtype=np.float64)
        self.srv_fixed_l = list(srv_fixed_l)
        self.srv_speed_l = list(srv_speed_l)
        self.alpha = alpha
        self.om_alpha = om_alpha
        self.dataset = dataset


class CommitBuffers:
    """Engine-owned out buffers one ``commit_batch`` span writes into.

    One instance per partitioning level ``pq`` (sub-query rows are
    ``cap * pq`` flat, submit order); reused across spans so compiled
    kernels can cache the raw pointers.  ``rtts`` is an *input*: the
    engine pre-draws the span's RTT samples in arrival order (the rng
    stream must advance exactly as the per-query path would).  ``res_*``
    report the *last* query's reserve map -- the one piece of front-end
    state the reference path leaves holding a prediction.
    """

    __slots__ = (
        "cap",
        "pq",
        "rtts",
        "sub_g",
        "sub_service",
        "sub_work",
        "sub_finish",
        "sub_start",
        "q_total",
        "q_mw",
        "q_ms",
        "res_g",
        "res_v",
        "res_n",
    )

    def __init__(self, cap: int, pq: int) -> None:
        self.cap = cap
        self.pq = pq
        self.rtts = np.empty(cap, dtype=np.float64)
        self.sub_g = np.empty(cap * pq, dtype=np.int64)
        self.sub_service = np.empty(cap * pq, dtype=np.float64)
        self.sub_work = np.empty(cap * pq, dtype=np.float64)
        self.sub_finish = np.empty(cap * pq, dtype=np.float64)
        self.sub_start = np.empty(cap * pq, dtype=np.float64)
        self.q_total = np.empty(cap, dtype=np.float64)
        self.q_mw = np.empty(cap, dtype=np.float64)
        self.q_ms = np.empty(cap, dtype=np.float64)
        self.res_g = np.empty(pq, dtype=np.int64)
        self.res_v = np.empty(pq, dtype=np.float64)
        self.res_n = np.zeros(1, dtype=np.int64)


def assignment_at(
    state: SweepState, entry: PqEntry, est: "np.ndarray", start_id: float
) -> tuple[list[int], list[float]]:
    """Re-derive the final assignment at *start_id* (shared, exact).

    Binary search per query point; on multiple rings the ring with the
    strictly smallest estimate wins, first ring on ties -- byte-for-byte
    the reference path's closing ``assignment_at()``.  Returns
    ``(server_set, points)`` with *server_set* as global server indices.
    """
    fmod = math.fmod
    pts: list[float] = []
    for off in entry.offs:
        v = fmod(start_id + off, 1.0)
        if v < 0.0:
            v += 1.0
        if v >= 1.0:
            v -= 1.0
        pts.append(v)
    if state.single_ring:
        starts = state.ring_starts[0]
        last = len(starts) - 1
        g_list = [
            idx if (idx := bisect_right(starts, v) - 1) >= 0 else last
            for v in pts
        ]
    else:
        inf = math.inf
        g_list = []
        for v in pts:
            best_g = -1
            best_fin = inf
            for r in range(state.n_rings):
                starts = state.ring_starts[r]
                idx = bisect_right(starts, v) - 1
                if idx < 0:
                    idx = len(starts) - 1
                g = state.ring_lo[r] + idx
                fin_v = float(est[g])
                if fin_v < best_fin:
                    best_fin = fin_v
                    best_g = g
            g_list.append(best_g)
    return g_list, pts


class SweepKernel:
    """Base class of every scheduling kernel.

    Subclasses set ``name`` (the registry key) and ``exact`` (the
    bit-identical promise), and implement :meth:`select`.  ``bind`` is an
    optional hook called whenever the engine's :class:`SweepState` is
    rebuilt -- kernels holding derived caches (pointers, strided views)
    refresh them there.
    """

    name: ClassVar[str] = "abstract"
    exact: ClassVar[bool] = False
    #: one-line human description for ``repro kernels``.
    description: ClassVar[str] = ""
    #: kernels whose :meth:`commit_batch` beats a python loop even on
    #: short spans (the compiled kernel) set this so the engine prefers
    #: the bulk seam regardless of span length.
    fused_commit: ClassVar[bool] = False

    def bind(self, state: SweepState) -> None:  # pragma: no cover - hook
        """Called when the engine (re)builds its mirrors."""

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        """Schedule one query: ``-> (server_set, points, start_id)``.

        *server_set* holds global server indices, one per sub-query point.
        The engine never reads ``state.est`` after the call -- it is a
        scratch buffer kernels may use (the numpy kernels evaluate all n
        estimates into it; the compiled kernel computes estimates lazily
        at its gather sites and leaves it untouched).
        """
        raise NotImplementedError

    def commit_batch(
        self,
        state: SweepState,
        entry: PqEntry,
        plan: CommitPlan,
        bufs: CommitBuffers,
        start: int,
        nq: int,
    ) -> None:
        """Fused sweep+commit over queries ``start .. start + nq``.

        Contract: on return the live mirrors (``state.busy``, ``plan.spd``,
        ``entry.Q``) hold exactly the state the per-query path would have
        produced after the span's last query, and *bufs* holds the span's
        chunk-buffer rows (sub-query rows in submit order, per-query
        totals, the last query's reserve map).  The engine guarantees no
        failed server can be scheduled (it never enters the bulk seam
        inside a failure window), a span-constant ``pq`` matching *entry*,
        and ``bufs.rtts[:nq]`` pre-drawn in arrival order.

        The engine times this call as one opaque span: its wall is what
        the chunk accounting charges to scheduling and what the phase
        profiler (:mod:`repro.obs.profiler`) reports as ``sweep_commit``
        -- kernels must not do unrelated work here or the per-phase
        attribution in ``repro profile`` / ``BENCH_<rev>.json`` lies.

        This default implementation is the reference python commit loop --
        the same scalar float operations in the same order as the engine's
        inline per-query path (and as ``roar_commit_batch`` in
        ``csrc/sweep.c``; the three are pinned together by the
        differential tests).  Override it only with something
        bit-identical, or set ``exact = False`` and document the bound.
        """
        select = self.select
        busy_np = state.busy
        spd_np = plan.spd
        Q = entry.Q
        wd = entry.wd
        off0 = entry.off0
        pq = entry.pq
        # plain-list shadows: the per-query updates are scalar float
        # arithmetic, which python floats do ~5x cheaper than numpy scalars
        busy_l = busy_np.tolist()
        spd_l = spd_np.tolist()
        srv_fixed_l = plan.srv_fixed_l
        srv_speed_l = plan.srv_speed_l
        fe_fixed = state.fe_fixed
        alpha = plan.alpha
        om_alpha = plan.om_alpha
        dataset = plan.dataset
        arr_l = plan.arr_l
        rtt_l = bufs.rtts[:nq].tolist()
        fmod = math.fmod

        sg: list[int] = []
        ssv: list[float] = []
        swk: list[float] = []
        sf: list[float] = []
        sst: list[float] = []
        sg_append = sg.append
        ssv_append = ssv.append
        swk_append = swk.append
        sf_append = sf.append
        sst_append = sst.append
        q_total: list[float] = []
        q_mw: list[float] = []
        q_ms: list[float] = []
        res: dict[int, float] = {}

        for k in range(nq):
            now = arr_l[start + k]
            g_list, pts, start_id = select(state, entry, now)
            rtt = rtt_l[k]

            # widths + reserve (FIFO over sub-queries, first occurrence
            # syncs the live queue, repeats accumulate)
            v = fmod(start_id + off0, 1.0)
            if v < 0.0:
                v += 1.0
            if v >= 1.0:
                v -= 1.0
            prev = v
            w_list = []
            res = {}
            res_get = res.get
            for i in range(pq):
                d = pts[i]
                w = fmod(d - prev, 1.0)
                if w < 0.0:
                    w += 1.0
                if w >= 1.0:
                    w -= 1.0
                w_list.append(w)
                prev = d
                g = g_list[i]
                spd_g = spd_l[g]
                service = fe_fixed + (w * dataset) / (
                    spd_g if spd_g > 1e-9 else 1e-9
                )
                base = res_get(g)
                if base is None:
                    base = busy_l[g]
                res[g] = (base if base > now else now) + service

            finish = now
            mw = 0.0
            ms = 0.0
            half = rtt / 2.0
            arr_t = now + half
            # submit + EWMA observe (LIFO: the reference path pops)
            for i in range(pq - 1, -1, -1):
                g = g_list[i]
                work = w_list[i] * dataset
                b = busy_l[g]
                wait = b - now
                if wait < 0.0:
                    wait = 0.0
                start_t = arr_t if arr_t > b else b
                service = srv_fixed_l[g] + work / srv_speed_l[g]
                f = start_t + service
                busy_l[g] = f
                sg_append(g)
                ssv_append(service)
                swk_append(work)
                sf_append(f)
                sst_append(start_t)
                eff = service - fe_fixed
                if eff > 0.0 and work > 0.0:
                    spd_l[g] = om_alpha * spd_l[g] + alpha * (work / eff)
                fh = f + half
                if fh > finish:
                    finish = fh
                if wait > mw:
                    mw = wait
                if service > ms:
                    ms = service

            # write-through the final per-server values (only the last
            # value per server matters to the next query's estimates)
            for g in res:
                busy_np[g] = busy_l[g]
                s_g = spd_l[g]
                if spd_np[g] != s_g:
                    spd_np[g] = s_g
                    Q[g] = wd / s_g

            q_total.append(finish - now)
            q_mw.append(mw)
            q_ms.append(ms)

        m = nq * pq
        bufs.sub_g[:m] = sg
        bufs.sub_service[:m] = ssv
        bufs.sub_work[:m] = swk
        bufs.sub_finish[:m] = sf
        bufs.sub_start[:m] = sst
        bufs.q_total[:nq] = q_total
        bufs.q_mw[:nq] = q_mw
        bufs.q_ms[:nq] = q_ms
        rn = len(res)
        bufs.res_n[0] = rn
        if rn:
            keys = list(res)
            bufs.res_g[:rn] = keys
            bufs.res_v[:rn] = [res[g] for g in keys]
