"""The bounded-approximate kernel: a sampled sweep with a stated contract.

Following the Contracts discipline, an operating point that trades
exactness for speed must say *how much* exactness it trades.  This kernel
samples the configuration axis of the sweep instead of evaluating every
candidate rotation, and ships with a documented deviation bound that the
differential harness (:mod:`repro.kernels.divergence`) measures against
the exact oracle on the full builtin scenario battery -- the tests in
``tests/test_kernels.py`` fail if the measured divergence ever exceeds
the documented bound.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .base import DeviationBound, PqEntry, SweepKernel, SweepState, assignment_at

__all__ = ["ApproxTopKKernel"]


class _SampleView:
    """Per-entry strided sample of the owner timelines, cached on ext."""

    __slots__ = ("indices", "owners_sub", "mask", "has_mask", "noeval_list", "dense")

    def __init__(self, entry: PqEntry, stride: int) -> None:
        n_configs = entry.n_configs
        #: small config spaces are evaluated densely: sampling ~stride
        #: configurations saves nothing and the coarse pass would miss a
        #: large fraction of the space -- below the cutoff this kernel is
        #: exact by construction.
        self.dense = n_configs <= 4 * stride
        if self.dense:
            stride = 1
        #: sampled config indices as a plain list (scalar lookup per query).
        self.indices = list(range(0, n_configs, stride))
        # contiguous copies: a strided gather per query would defeat the
        # point of sampling
        self.owners_sub = [
            np.ascontiguousarray(own[:, ::stride]) for own in entry.owners
        ]
        # pre-masked +inf rows for never-evaluated configurations
        mask = np.zeros(len(self.indices), dtype=bool)
        noeval = set(entry.noeval.tolist())
        for j, c in enumerate(self.indices):
            if c in noeval:
                mask[j] = True
        self.mask = mask
        self.has_mask = bool(mask.any())
        self.noeval_list = sorted(noeval)


class ApproxTopKKernel(SweepKernel):
    """Coarse-to-fine sampled argmin over the rotation sweep.

    Evaluates every ``stride``-th candidate configuration (config 0 -- the
    initial placement -- is always sampled), then densely re-evaluates the
    ``2*stride - 1`` configurations around each of the ``top_k`` best
    coarse candidates and commits the best examined configuration (first
    config index on ties, matching the oracle's first-wins rule *within
    the examined set*).  The examined set is ``~n_configs/stride +
    top_k * 2 * stride`` configurations instead of ``n_configs``, so the
    sweep's O(n*pq) gather/max/argmin shrinks by roughly the stride
    factor.  The win is *scale-dependent*: numpy dispatch overhead floors
    the cost at small fleets (~parity at 1k servers), and the saving
    grows with the configuration count (~1.4x at 3k servers, stride=8).
    When a C toolchain is available, the ``compiled`` kernel is both
    faster and exact -- this kernel is the escape hatch for huge fleets
    without one.

    Config spaces of at most ``4 * stride`` candidates are evaluated
    densely (sampling a dozen configurations saves nothing), so on small
    fleets this kernel degenerates to the exact oracle by construction.

    **Deviation bound** (the documented contract, validated by
    ``tests/test_kernels.py`` via :mod:`repro.kernels.divergence` on all
    8 builtin scenarios at ``n_servers=40, p=5`` -- large enough that
    sampling actually engages -- with the defaults ``stride=8, top_k=1``):

    * per decision, on identical engine state: at most ``60%`` of queries
      pick a different server set than the oracle, and the 99th percentile
      of relative predicted-makespan regret (never negative -- the
      examined set is a subset of the oracle's) stays within ``200%``;
    * end-to-end trajectory, between independent runs (feedback included:
      one divergent choice perturbs every later queue state): the 99th
      percentile of per-query relative completion-latency deviation stays
      within ``250%`` and the run-level mean completion latency within
      ``30%``.

    Outside sustained saturation the measured deviation is zero or near
    zero on every battery scenario; the tail of the bound is carried
    entirely by the overloaded flash-crowd compositions, where the
    makespan landscape across configurations is jagged and sampling pays
    its worst case.  The bound is exposed programmatically as
    :attr:`bound` so the tests and the docstring cannot drift apart.
    """

    name = "approx_topk"
    exact = False
    description = "strided sweep + local refinement; documented deviation bound"

    #: the documented contract (see class docstring; keep the two in sync).
    bound = DeviationBound(
        decision_divergence=0.60,
        makespan_regret_p99=2.00,
        latency_rel_p99=2.50,
        mean_delay_rel=0.30,
    )

    def __init__(self, stride: int = 8, top_k: int = 1) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.stride = stride
        self.top_k = top_k
        self._ext_key = f"{self.name}:{stride}"

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        est = state.est
        np.subtract(state.busy, now, out=est)
        np.maximum(est, 0.0, out=est)
        np.add(est, state.fe_fixed, out=est)
        np.add(est, entry.Q, out=est)

        view = entry.ext.get(self._ext_key)
        if view is None:
            view = _SampleView(entry, self.stride)
            entry.ext[self._ext_key] = view
        # -- coarse pass over the sampled configurations -------------------
        if state.single_ring:
            fin = est[view.owners_sub[0]]
        else:
            fin = est[state.ring_lo[0] : state.ring_hi[0]][view.owners_sub[0]]
            for r in range(1, state.n_rings):
                other = est[state.ring_lo[r] : state.ring_hi[r]][
                    view.owners_sub[r]
                ]
                np.minimum(fin, other, out=fin)
        mk = fin.max(axis=0)
        if view.has_mask:
            mk[view.mask] = np.inf
        if view.dense:  # small config space: the coarse pass was exact
            start_id = entry.csi[int(mk.argmin())]
            g_list, pts = assignment_at(state, entry, est, start_id)
            return g_list, pts, start_id

        # -- dense refinement around the top-k coarse candidates -----------
        # (one basin is not enough: under saturation the makespan landscape
        # is jagged and the global minimum often hides between samples of a
        # non-winning basin -- top-k windows cap the regret tail)
        if self.top_k == 1:
            top = [int(mk.argmin())]
        else:
            k = min(self.top_k, len(view.indices))
            top = np.argpartition(mk, k - 1)[:k].tolist()
        best = -1
        best_mk = np.inf
        indices = view.indices
        stride = self.stride
        n_configs = entry.n_configs
        for t in sorted(top):
            coarse = indices[t]
            lo = max(0, coarse - stride + 1)
            hi = min(n_configs, coarse + stride)
            if state.single_ring:
                finw = est[entry.owners[0][:, lo:hi]]
            else:
                finw = est[state.ring_lo[0] : state.ring_hi[0]][
                    entry.owners[0][:, lo:hi]
                ]
                for r in range(1, state.n_rings):
                    other = est[state.ring_lo[r] : state.ring_hi[r]][
                        entry.owners[r][:, lo:hi]
                    ]
                    np.minimum(finw, other, out=finw)
            mkw = finw.max(axis=0)
            if view.noeval_list:
                for c in view.noeval_list:
                    if lo <= c < hi:
                        mkw[c - lo] = np.inf
            j = int(mkw.argmin())
            val = float(mkw[j])
            # first-wins on ties, in ascending config order (windows are
            # visited sorted and may overlap; strict < keeps the earliest)
            cand = lo + j
            if val < best_mk or (val == best_mk and cand < best):
                best_mk = val
                best = cand
        start_id = entry.csi[best]

        g_list, pts = assignment_at(state, entry, est, start_id)
        return g_list, pts, start_id
