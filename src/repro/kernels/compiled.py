"""The compiled kernel: the whole scheduling block as one C call.

``csrc/sweep.c`` replicates the exact oracle's float arithmetic in C --
estimate evaluation, the owner-timeline sweep, and the final assignment --
fused into a single pass with no temporaries.  The win is not asymptotic
(the work is the same O(n + pq * n_configs)) but constant-factor: the
oracle pays ~10 numpy dispatches plus temporary allocation per query,
which dominates at the few-thousand-element sizes a per-query sweep runs
at.  Target: >= 2x on the sweep at the 1k-server configuration
(``repro bench`` reports per-kernel sweep columns; CI uploads them).

Build story: the C source has **no Python.h dependency**, so it needs only
a C compiler, not Python headers.  On first use it is compiled with the
system toolchain (``cc``/``gcc``/``clang``) into a per-user cache keyed by
the source hash, then loaded through :mod:`ctypes`.  ``repro[fast]``
installs numpy; the compiled kernel is an opportunistic layer on top --
when no toolchain is present, :func:`compiled_available` is False, the
registry refuses the kernel with a clear message, and everything else
falls back to the pure-python-built oracle.  Set ``REPRO_KERNEL_CACHE``
to relocate the build cache, ``REPRO_NO_COMPILED_KERNEL=1`` to disable
the kernel outright (CI uses this to test the fallback path).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .base import (
    CommitBuffers,
    CommitPlan,
    KernelUnavailableError,
    PqEntry,
    SweepKernel,
    SweepState,
)

__all__ = [
    "CompiledKernel",
    "compiled_available",
    "compiled_unavailable_reason",
    "load_sweep_library",
]

_SOURCE = Path(__file__).with_name("csrc") / "sweep.c"
_ABI_VERSION = 2

#: memoised library handle / failure reason (one build attempt per process).
_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None
_probed = False


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-roar" / "kernels"


def _find_compiler() -> Optional[str]:
    cc = sysconfig.get_config_var("CC")
    candidates = ([cc.split()[0]] if cc else []) + ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def _build_library() -> Path:
    """Compile ``sweep.c`` into the cache; returns the shared-object path."""
    source = _SOURCE.read_text()
    tag = hashlib.sha256(
        f"{source}|abi={_ABI_VERSION}|{os.uname().machine}".encode()
    ).hexdigest()[:16]
    out = _cache_dir() / f"roar_sweep_{tag}.so"
    if out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise KernelUnavailableError(
            "no C compiler found (looked for $CC, cc, gcc, clang); install "
            "a toolchain or use kernel='exact_numpy'"
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    # build to a temp name then atomically rename: concurrent processes
    # racing the first build must never load a half-written object
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out.parent)
    os.close(fd)
    try:
        # -march=native is safe for this JIT-style build (the object is
        # always built on the machine that runs it) and optional.
        # -ffp-contract=off is NOT optional: the fused commit's EWMA update
        # (om_alpha*spd + alpha*(work/eff)) is a fused-multiply-add
        # candidate, and both gcc and clang contract by default at -O3,
        # which would change the float results and break the bit-identity
        # contract.  A compiler that rejects the flag therefore cannot
        # build an `exact = True` kernel -- refuse and fall back to the
        # oracle rather than ship silently-drifting floats.
        base = [compiler, "-O3", "-fPIC", "-shared", "-o", tmp, str(_SOURCE), "-lm"]
        attempts = (
            base[:1] + ["-march=native", "-ffp-contract=off"] + base[1:],
            base[:1] + ["-ffp-contract=off"] + base[1:],
        )
        stderr = ""
        for cmd in attempts:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
            if proc.returncode == 0:
                break
            stderr = proc.stderr.strip()
        else:
            raise KernelUnavailableError(
                f"C kernel build failed ({compiler}; -ffp-contract=off is "
                f"required for bit-identity):\n{stderr}"
            )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def load_sweep_library() -> ctypes.CDLL:
    """Build (once, cached) and load the compiled sweep; memoised."""
    global _lib, _load_error, _probed
    if _lib is not None:
        return _lib
    if _probed and _load_error is not None:
        raise KernelUnavailableError(_load_error)
    _probed = True
    try:
        if os.environ.get("REPRO_NO_COMPILED_KERNEL"):
            raise KernelUnavailableError(
                "compiled kernel disabled via REPRO_NO_COMPILED_KERNEL"
            )
        if np is None:  # pragma: no cover - the image bakes numpy in
            raise KernelUnavailableError("the compiled kernel requires numpy")
        if np.dtype(np.intp).itemsize != 8:  # pragma: no cover - LP64 only
            raise KernelUnavailableError(
                "the compiled kernel assumes 64-bit numpy intp"
            )
        lib = ctypes.CDLL(str(_build_library()))
        lib.roar_sweep_abi_version.restype = ctypes.c_int64
        if lib.roar_sweep_abi_version() != _ABI_VERSION:  # pragma: no cover
            raise KernelUnavailableError("stale compiled kernel ABI; clear the cache")
        fn = lib.roar_sweep_select
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.c_void_p, ctypes.c_double]  # (&args, now)
        cb = lib.roar_commit_batch
        cb.restype = ctypes.c_int64
        cb.argtypes = [  # (&args, start, nq)
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
        ]
        _lib = lib
        return lib
    except KernelUnavailableError as exc:
        _load_error = str(exc)
        raise


def compiled_available() -> bool:
    """True when the C kernel can be (or already was) built and loaded."""
    try:
        load_sweep_library()
        return True
    except KernelUnavailableError:
        return False


def compiled_unavailable_reason() -> Optional[str]:
    """Why the compiled kernel cannot run, or None when it can."""
    return None if compiled_available() else _load_error


class _SweepArgs(ctypes.Structure):
    """Mirror of ``roar_sweep_args`` in ``csrc/sweep.c`` (keep in sync)."""

    _fields_ = [
        ("busy", ctypes.c_void_p),
        ("q_over_s", ctypes.c_void_p),
        ("fe_fixed", ctypes.c_double),
        ("n", ctypes.c_int64),
        ("owners", ctypes.c_void_p),
        ("ring_lo", ctypes.c_void_p),
        ("ring_hi", ctypes.c_void_p),
        ("n_rings", ctypes.c_int64),
        ("pq", ctypes.c_int64),
        ("n_configs", ctypes.c_int64),
        ("evaluated", ctypes.c_void_p),
        ("config_start_id", ctypes.c_void_p),
        ("offs", ctypes.c_void_p),
        ("starts_flat", ctypes.c_void_p),
        ("ev_offsets", ctypes.c_void_p),
        ("ev_ring", ctypes.c_void_p),
        ("ev_point", ctypes.c_void_p),
        ("ev_owner", ctypes.c_void_p),
        ("cur", ctypes.c_void_p),
        ("owner_cur", ctypes.c_void_p),
        ("g_out", ctypes.c_void_p),
        ("pts_out", ctypes.c_void_p),
        ("start_id_out", ctypes.c_void_p),
    ]


class _CommitArgs(ctypes.Structure):
    """Mirror of ``roar_commit_args`` in ``csrc/sweep.c`` (keep in sync)."""

    _fields_ = [
        ("sweep", _SweepArgs),
        ("srv_fixed", ctypes.c_void_p),
        ("srv_speed", ctypes.c_void_p),
        ("alpha", ctypes.c_double),
        ("om_alpha", ctypes.c_double),
        ("dataset", ctypes.c_double),
        ("wd", ctypes.c_double),
        ("off0", ctypes.c_double),
        ("arrivals", ctypes.c_void_p),
        ("rtts", ctypes.c_void_p),
        ("busy_mut", ctypes.c_void_p),
        ("spd", ctypes.c_void_p),
        ("q_over_s_mut", ctypes.c_void_p),
        ("wbuf", ctypes.c_void_p),
        ("res_g", ctypes.c_void_p),
        ("res_v", ctypes.c_void_p),
        ("res_n", ctypes.c_void_p),
        ("sub_g", ctypes.c_void_p),
        ("sub_service", ctypes.c_void_p),
        ("sub_work", ctypes.c_void_p),
        ("sub_finish", ctypes.c_void_p),
        ("sub_start", ctypes.c_void_p),
        ("q_total", ctypes.c_void_p),
        ("q_mw", ctypes.c_void_p),
        ("q_ms", ctypes.c_void_p),
    ]


def _sweep_struct(
    state: SweepState,
    entry: PqEntry,
    starts_flat: "np.ndarray",
    g_buf: "np.ndarray",
    pts_buf: "np.ndarray",
    sid_buf: "np.ndarray",
) -> tuple[_SweepArgs, tuple]:
    """Fill a :class:`_SweepArgs` for (state, entry); returns (struct, holds)."""
    pack = entry.table.kernel_pack()
    lo = np.asarray(state.ring_lo, dtype=np.int64)
    hi = np.asarray(state.ring_hi, dtype=np.int64)
    offs = np.asarray(entry.offs, dtype=np.float64)
    pq = len(entry.offs)
    cur = np.empty(pq, dtype=np.float64)
    owner_cur = np.empty(state.n_rings * pq, dtype=np.int64)
    args = _SweepArgs(
        busy=state.busy.ctypes.data,
        q_over_s=entry.Q.ctypes.data,
        fe_fixed=state.fe_fixed,
        n=state.n,
        owners=pack.owner_stack.ctypes.data,
        ring_lo=lo.ctypes.data,
        ring_hi=hi.ctypes.data,
        n_rings=state.n_rings,
        pq=pq,
        n_configs=entry.n_configs,
        evaluated=pack.evaluated_u8.ctypes.data,
        config_start_id=pack.config_start_id.ctypes.data,
        offs=offs.ctypes.data,
        starts_flat=starts_flat.ctypes.data,
        ev_offsets=pack.ev_offsets.ctypes.data,
        ev_ring=pack.ev_ring.ctypes.data,
        ev_point=pack.ev_point.ctypes.data,
        ev_owner=pack.ev_owner.ctypes.data,
        cur=cur.ctypes.data,
        owner_cur=owner_cur.ctypes.data,
        g_out=g_buf.ctypes.data,
        pts_out=pts_buf.ctypes.data,
        start_id_out=sid_buf.ctypes.data,
    )
    holds = (lo, hi, offs, pack, starts_flat, cur, owner_cur, state)
    return args, holds


class _EntryBlock:
    """Per-(state, entry) argument block cached on ``entry.ext``.

    Every per-query-invariant pointer is written into one
    :class:`_SweepArgs` struct so each ``select`` marshals exactly two
    foreign-call arguments.  The referenced numpy arrays are held on the
    block (``_hold``) so the raw pointers cannot dangle.
    """

    __slots__ = ("args_ptr", "g_buf", "pts_buf", "sid_buf", "state_token", "_hold")

    def __init__(
        self, state: SweepState, entry: PqEntry, starts_flat: "np.ndarray"
    ) -> None:
        pq = len(entry.offs)
        self.g_buf = np.empty(pq, dtype=np.int64)
        self.pts_buf = np.empty(pq, dtype=np.float64)
        self.sid_buf = np.empty(1, dtype=np.float64)
        args, holds = _sweep_struct(
            state, entry, starts_flat, self.g_buf, self.pts_buf, self.sid_buf
        )
        # keep the struct and every array behind its raw pointers alive
        self._hold = (args, holds)
        self.args_ptr = ctypes.addressof(args)
        self.state_token = id(state)


class _CommitBlock:
    """Per-(state, entry, plan, bufs) fused-commit argument block.

    Same idea as :class:`_EntryBlock`, one level up: every pointer a whole
    chunk's sweep+commit needs -- including the engine-owned
    :class:`~repro.kernels.base.CommitBuffers` out arrays and the batch's
    arrival times -- lives in one struct, so each chunk marshals three
    scalar foreign-call arguments (block pointer, start index, count).
    """

    __slots__ = ("args_ptr", "state_token", "plan_token", "bufs_token", "_hold")

    def __init__(
        self,
        state: SweepState,
        entry: PqEntry,
        plan: CommitPlan,
        bufs: CommitBuffers,
        starts_flat: "np.ndarray",
    ) -> None:
        pq = len(entry.offs)
        g_buf = np.empty(pq, dtype=np.int64)
        pts_buf = np.empty(pq, dtype=np.float64)
        sid_buf = np.empty(1, dtype=np.float64)
        sweep, sweep_holds = _sweep_struct(
            state, entry, starts_flat, g_buf, pts_buf, sid_buf
        )
        wbuf = np.empty(pq, dtype=np.float64)
        args = _CommitArgs(
            sweep=sweep,
            srv_fixed=plan.srv_fixed.ctypes.data,
            srv_speed=plan.srv_speed.ctypes.data,
            alpha=plan.alpha,
            om_alpha=plan.om_alpha,
            dataset=plan.dataset,
            wd=entry.wd,
            off0=entry.off0,
            arrivals=plan.arrivals.ctypes.data,
            rtts=bufs.rtts.ctypes.data,
            busy_mut=state.busy.ctypes.data,
            spd=plan.spd.ctypes.data,
            q_over_s_mut=entry.Q.ctypes.data,
            wbuf=wbuf.ctypes.data,
            res_g=bufs.res_g.ctypes.data,
            res_v=bufs.res_v.ctypes.data,
            res_n=bufs.res_n.ctypes.data,
            sub_g=bufs.sub_g.ctypes.data,
            sub_service=bufs.sub_service.ctypes.data,
            sub_work=bufs.sub_work.ctypes.data,
            sub_finish=bufs.sub_finish.ctypes.data,
            sub_start=bufs.sub_start.ctypes.data,
            q_total=bufs.q_total.ctypes.data,
            q_mw=bufs.q_mw.ctypes.data,
            q_ms=bufs.q_ms.ctypes.data,
        )
        self._hold = (
            args,
            sweep_holds,
            g_buf,
            pts_buf,
            sid_buf,
            wbuf,
            plan,
            bufs,
        )
        self.args_ptr = ctypes.addressof(args)
        self.state_token = id(state)
        self.plan_token = id(plan)
        self.bufs_token = id(bufs)


class CompiledKernel(SweepKernel):
    """Fused C implementation of the exact sweep + commit (bit-identical intent).

    Replicates :class:`~repro.kernels.exact.ExactNumpyKernel`'s float
    arithmetic operation-for-operation in C (verified by the differential
    tests); ships as an on-first-use build against the system C compiler
    with a graceful fallback when none exists.  ``exact = True``: any
    divergence from the oracle is a bug, not a documented trade.

    Two entry points: :meth:`select` is the per-query sweep (used by the
    engine's per-query path, e.g. inside failure windows), and
    :meth:`commit_batch` is the fused sweep+commit -- one C call per
    chunk of queries, advancing the live mirrors in place and returning
    the chunk-buffer rows in bulk (``fused_commit = True`` so the engine
    prefers the bulk seam at any span length).
    """

    name = "compiled"
    exact = True
    fused_commit = True
    description = "fused C sweep+commit via ctypes (needs a C toolchain)"

    def __init__(self) -> None:
        lib = load_sweep_library()
        self._fn = lib.roar_sweep_select
        self._commit_fn = lib.roar_commit_batch
        self._state: Optional[SweepState] = None
        self._starts_flat: Optional["np.ndarray"] = None
        self._last_entry: Optional[PqEntry] = None
        self._last_block: Optional[_EntryBlock] = None

    def bind(self, state: SweepState) -> None:
        self._state = state
        self._last_entry = self._last_block = None
        starts = np.empty(state.n, dtype=np.float64)
        for lo, s in zip(state.ring_lo, state.ring_starts):
            starts[lo : lo + len(s)] = s
        self._starts_flat = starts

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        if state is not self._state:
            self.bind(state)
        if entry is self._last_entry:
            block = self._last_block
        else:
            block = entry.ext.get("compiled")
            if block is None or block.state_token != id(state):
                block = _EntryBlock(state, entry, self._starts_flat)
                entry.ext["compiled"] = block
            self._last_entry, self._last_block = entry, block
        best = self._fn(block.args_ptr, now)
        return (
            block.g_buf.tolist(),
            block.pts_buf.tolist(),
            entry.csi[best],
        )

    def commit_batch(
        self,
        state: SweepState,
        entry: PqEntry,
        plan: CommitPlan,
        bufs: CommitBuffers,
        start: int,
        nq: int,
    ) -> None:
        if state is not self._state:
            self.bind(state)
        block = entry.ext.get("compiled_commit")
        if (
            block is None
            or block.state_token != id(state)
            or block.plan_token != id(plan)
            or block.bufs_token != id(bufs)
        ):
            block = _CommitBlock(state, entry, plan, bufs, self._starts_flat)
            entry.ext["compiled_commit"] = block
        self._commit_fn(block.args_ptr, start, nq)
