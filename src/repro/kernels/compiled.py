"""The compiled kernel: the whole scheduling block as one C call.

``csrc/sweep.c`` replicates the exact oracle's float arithmetic in C --
estimate evaluation, the owner-timeline sweep, and the final assignment --
fused into a single pass with no temporaries.  The win is not asymptotic
(the work is the same O(n + pq * n_configs)) but constant-factor: the
oracle pays ~10 numpy dispatches plus temporary allocation per query,
which dominates at the few-thousand-element sizes a per-query sweep runs
at.  Target: >= 2x on the sweep at the 1k-server configuration
(``repro bench`` reports per-kernel sweep columns; CI uploads them).

Build story: the C source has **no Python.h dependency**, so it needs only
a C compiler, not Python headers.  On first use it is compiled with the
system toolchain (``cc``/``gcc``/``clang``) into a per-user cache keyed by
the source hash, then loaded through :mod:`ctypes`.  ``repro[fast]``
installs numpy; the compiled kernel is an opportunistic layer on top --
when no toolchain is present, :func:`compiled_available` is False, the
registry refuses the kernel with a clear message, and everything else
falls back to the pure-python-built oracle.  Set ``REPRO_KERNEL_CACHE``
to relocate the build cache, ``REPRO_NO_COMPILED_KERNEL=1`` to disable
the kernel outright (CI uses this to test the fallback path).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .base import KernelUnavailableError, PqEntry, SweepKernel, SweepState

__all__ = [
    "CompiledKernel",
    "compiled_available",
    "compiled_unavailable_reason",
    "load_sweep_library",
]

_SOURCE = Path(__file__).with_name("csrc") / "sweep.c"
_ABI_VERSION = 1

#: memoised library handle / failure reason (one build attempt per process).
_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None
_probed = False


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-roar" / "kernels"


def _find_compiler() -> Optional[str]:
    cc = sysconfig.get_config_var("CC")
    candidates = ([cc.split()[0]] if cc else []) + ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def _build_library() -> Path:
    """Compile ``sweep.c`` into the cache; returns the shared-object path."""
    source = _SOURCE.read_text()
    tag = hashlib.sha256(
        f"{source}|abi={_ABI_VERSION}|{os.uname().machine}".encode()
    ).hexdigest()[:16]
    out = _cache_dir() / f"roar_sweep_{tag}.so"
    if out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise KernelUnavailableError(
            "no C compiler found (looked for $CC, cc, gcc, clang); install "
            "a toolchain or use kernel='exact_numpy'"
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    # build to a temp name then atomically rename: concurrent processes
    # racing the first build must never load a half-written object
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out.parent)
    os.close(fd)
    try:
        # -march=native is safe for this JIT-style build (the object is
        # always built on the machine that runs it, and the kernel contains
        # no fused-multiply-add candidates, so codegen cannot change the
        # float results); retry without it for compilers that lack the flag.
        base = [compiler, "-O3", "-fPIC", "-shared", "-o", tmp, str(_SOURCE), "-lm"]
        attempts = (base[:1] + ["-march=native"] + base[1:], base)
        stderr = ""
        for cmd in attempts:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
            if proc.returncode == 0:
                break
            stderr = proc.stderr.strip()
        else:
            raise KernelUnavailableError(
                f"C kernel build failed ({compiler}):\n{stderr}"
            )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def load_sweep_library() -> ctypes.CDLL:
    """Build (once, cached) and load the compiled sweep; memoised."""
    global _lib, _load_error, _probed
    if _lib is not None:
        return _lib
    if _probed and _load_error is not None:
        raise KernelUnavailableError(_load_error)
    _probed = True
    try:
        if os.environ.get("REPRO_NO_COMPILED_KERNEL"):
            raise KernelUnavailableError(
                "compiled kernel disabled via REPRO_NO_COMPILED_KERNEL"
            )
        if np is None:  # pragma: no cover - the image bakes numpy in
            raise KernelUnavailableError("the compiled kernel requires numpy")
        if np.dtype(np.intp).itemsize != 8:  # pragma: no cover - LP64 only
            raise KernelUnavailableError(
                "the compiled kernel assumes 64-bit numpy intp"
            )
        lib = ctypes.CDLL(str(_build_library()))
        lib.roar_sweep_abi_version.restype = ctypes.c_int64
        if lib.roar_sweep_abi_version() != _ABI_VERSION:  # pragma: no cover
            raise KernelUnavailableError("stale compiled kernel ABI; clear the cache")
        fn = lib.roar_sweep_select
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.c_void_p, ctypes.c_double]  # (&args, now)
        _lib = lib
        return lib
    except KernelUnavailableError as exc:
        _load_error = str(exc)
        raise


def compiled_available() -> bool:
    """True when the C kernel can be (or already was) built and loaded."""
    try:
        load_sweep_library()
        return True
    except KernelUnavailableError:
        return False


def compiled_unavailable_reason() -> Optional[str]:
    """Why the compiled kernel cannot run, or None when it can."""
    return None if compiled_available() else _load_error


class _SweepArgs(ctypes.Structure):
    """Mirror of ``roar_sweep_args`` in ``csrc/sweep.c`` (keep in sync)."""

    _fields_ = [
        ("busy", ctypes.c_void_p),
        ("q_over_s", ctypes.c_void_p),
        ("fe_fixed", ctypes.c_double),
        ("n", ctypes.c_int64),
        ("owners", ctypes.c_void_p),
        ("ring_lo", ctypes.c_void_p),
        ("ring_hi", ctypes.c_void_p),
        ("n_rings", ctypes.c_int64),
        ("pq", ctypes.c_int64),
        ("n_configs", ctypes.c_int64),
        ("evaluated", ctypes.c_void_p),
        ("config_start_id", ctypes.c_void_p),
        ("offs", ctypes.c_void_p),
        ("starts_flat", ctypes.c_void_p),
        ("ev_offsets", ctypes.c_void_p),
        ("ev_ring", ctypes.c_void_p),
        ("ev_point", ctypes.c_void_p),
        ("ev_owner", ctypes.c_void_p),
        ("cur", ctypes.c_void_p),
        ("owner_cur", ctypes.c_void_p),
        ("g_out", ctypes.c_void_p),
        ("pts_out", ctypes.c_void_p),
        ("start_id_out", ctypes.c_void_p),
    ]


class _EntryBlock:
    """Per-(state, entry) argument block cached on ``entry.ext``.

    Every per-query-invariant pointer is written into one
    :class:`_SweepArgs` struct so each ``select`` marshals exactly two
    foreign-call arguments.  The referenced numpy arrays are held on the
    block (``_hold``) so the raw pointers cannot dangle.
    """

    __slots__ = ("args_ptr", "g_buf", "pts_buf", "sid_buf", "state_token", "_hold")

    def __init__(
        self, state: SweepState, entry: PqEntry, starts_flat: "np.ndarray"
    ) -> None:
        pack = entry.table.kernel_pack()
        lo = np.asarray(state.ring_lo, dtype=np.int64)
        hi = np.asarray(state.ring_hi, dtype=np.int64)
        offs = np.asarray(entry.offs, dtype=np.float64)
        pq = len(entry.offs)
        self.g_buf = np.empty(pq, dtype=np.int64)
        self.pts_buf = np.empty(pq, dtype=np.float64)
        self.sid_buf = np.empty(1, dtype=np.float64)
        cur = np.empty(pq, dtype=np.float64)
        owner_cur = np.empty(state.n_rings * pq, dtype=np.int64)
        args = _SweepArgs(
            busy=state.busy.ctypes.data,
            q_over_s=entry.Q.ctypes.data,
            fe_fixed=state.fe_fixed,
            n=state.n,
            owners=pack.owner_stack.ctypes.data,
            ring_lo=lo.ctypes.data,
            ring_hi=hi.ctypes.data,
            n_rings=state.n_rings,
            pq=pq,
            n_configs=entry.n_configs,
            evaluated=pack.evaluated_u8.ctypes.data,
            config_start_id=pack.config_start_id.ctypes.data,
            offs=offs.ctypes.data,
            starts_flat=starts_flat.ctypes.data,
            ev_offsets=pack.ev_offsets.ctypes.data,
            ev_ring=pack.ev_ring.ctypes.data,
            ev_point=pack.ev_point.ctypes.data,
            ev_owner=pack.ev_owner.ctypes.data,
            cur=cur.ctypes.data,
            owner_cur=owner_cur.ctypes.data,
            g_out=self.g_buf.ctypes.data,
            pts_out=self.pts_buf.ctypes.data,
            start_id_out=self.sid_buf.ctypes.data,
        )
        # keep the struct and every array behind its raw pointers alive
        self._hold = (args, lo, hi, offs, pack, starts_flat, cur, owner_cur, state)
        self.args_ptr = ctypes.addressof(args)
        self.state_token = id(state)


class CompiledKernel(SweepKernel):
    """Fused C implementation of the exact sweep (bit-identical intent).

    Replicates :class:`~repro.kernels.exact.ExactNumpyKernel`'s float
    arithmetic operation-for-operation in C (verified by the differential
    tests); ships as an on-first-use build against the system C compiler
    with a graceful fallback when none exists.  ``exact = True``: any
    divergence from the oracle is a bug, not a documented trade.
    """

    name = "compiled"
    exact = True
    description = "fused C sweep via ctypes (>=2x sweep; needs a C toolchain)"

    def __init__(self) -> None:
        lib = load_sweep_library()
        self._fn = lib.roar_sweep_select
        self._state: Optional[SweepState] = None
        self._starts_flat: Optional["np.ndarray"] = None
        self._last_entry: Optional[PqEntry] = None
        self._last_block: Optional[_EntryBlock] = None

    def bind(self, state: SweepState) -> None:
        self._state = state
        self._last_entry = self._last_block = None
        starts = np.empty(state.n, dtype=np.float64)
        for lo, s in zip(state.ring_lo, state.ring_starts):
            starts[lo : lo + len(s)] = s
        self._starts_flat = starts

    def select(
        self, state: SweepState, entry: PqEntry, now: float
    ) -> tuple[list[int], list[float], float]:
        if state is not self._state:
            self.bind(state)
        if entry is self._last_entry:
            block = self._last_block
        else:
            block = entry.ext.get("compiled")
            if block is None or block.state_token != id(state):
                block = _EntryBlock(state, entry, self._starts_flat)
                entry.ext["compiled"] = block
            self._last_entry, self._last_block = entry, block
        best = self._fn(block.args_ptr, now)
        return (
            block.g_buf.tolist(),
            block.pts_buf.tolist(),
            entry.csi[best],
        )
