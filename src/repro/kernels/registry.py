"""The scheduling-kernel registry.

Kernels are looked up by name wherever a kernel knob exists (the engine's
``kernel=`` parameter, the scenario ``kernel:`` field, ``repro matrix
--kernel``, the bench sweeps).  Names accept an optional parameter suffix
``name:key=value[,key=value...]`` forwarded to the kernel constructor,
e.g. ``approx_topk:stride=8``.  Third-party kernels register through
:func:`register_kernel`.
"""

from __future__ import annotations

from typing import Callable, Union

from .base import KernelUnavailableError, SweepKernel

__all__ = [
    "DEFAULT_KERNEL",
    "available_kernels",
    "canonical_spec",
    "get_kernel",
    "is_known_kernel",
    "kernel_available",
    "kernel_names",
    "kernel_specs",
    "register_kernel",
]

DEFAULT_KERNEL = "exact_numpy"

_FACTORIES: dict[str, Callable[..., SweepKernel]] = {}
_ALIASES: dict[str, str] = {}


def register_kernel(
    name: str,
    factory: Callable[..., SweepKernel],
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a kernel factory under *name* (plus optional aliases)."""
    if not replace and (name in _FACTORIES or name in _ALIASES):
        raise ValueError(f"kernel {name!r} is already registered")
    _FACTORIES[name] = factory
    for alias in aliases:
        if not replace and (alias in _FACTORIES or alias in _ALIASES):
            raise ValueError(f"kernel alias {alias!r} is already registered")
        _ALIASES[alias] = name


def kernel_names() -> tuple[str, ...]:
    """Canonical registered kernel names, registration order."""
    return tuple(_FACTORIES)


def _parse_spec(spec: str) -> tuple[str, dict[str, object]]:
    name, _, params = spec.partition(":")
    name = name.strip()
    kwargs: dict[str, object] = {}
    if params:
        for item in params.split(","):
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad kernel parameter {item!r} in {spec!r}; "
                    "expected key=value"
                )
            raw = raw.strip()
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            kwargs[key.strip()] = value
    return name, kwargs


def get_kernel(spec: Union[str, SweepKernel, None]) -> SweepKernel:
    """Resolve *spec* to a kernel instance.

    ``None`` means the default (:data:`DEFAULT_KERNEL`); an instance
    passes through; a string is looked up in the registry, with an
    optional ``:key=value,...`` parameter suffix.  Raises
    :class:`~repro.kernels.base.KernelUnavailableError` when the kernel
    exists but cannot run here (e.g. ``compiled`` without a C toolchain)
    and :class:`ValueError` for unknown names.
    """
    if spec is None:
        spec = DEFAULT_KERNEL
    if isinstance(spec, SweepKernel):
        return spec
    name, kwargs = _parse_spec(spec)
    name = _ALIASES.get(name, name)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scheduling kernel {name!r}; registered: "
            f"{', '.join(kernel_names())}"
        )
    return factory(**kwargs)


def is_known_kernel(spec: str) -> bool:
    """Cheap name-only validation (no instantiation, no build attempt)."""
    try:
        name, _ = _parse_spec(spec)
    except ValueError:
        return False
    return name in _FACTORIES or name in _ALIASES


def canonical_spec(spec: str) -> str:
    """Normalise *spec*: resolve aliases, keep any parameter suffix.

    Validates the name (raises :class:`ValueError` for unknown kernels)
    without instantiating the kernel -- no build attempt, so it is safe
    to call up front before expensive work.
    """
    name, _ = _parse_spec(spec)  # validates the k=v syntax
    resolved = _ALIASES.get(name, name)
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown scheduling kernel {name!r}; registered: "
            f"{', '.join(kernel_names())}"
        )
    _, _, params = spec.partition(":")
    return f"{resolved}:{params}" if params else resolved


def kernel_available(name: str) -> bool:
    """True when ``get_kernel(name)`` would succeed in this environment."""
    try:
        get_kernel(name)
        return True
    except KernelUnavailableError:
        return False


def available_kernels() -> tuple[str, ...]:
    """Registered kernels that can actually run in this environment."""
    return tuple(n for n in kernel_names() if kernel_available(n))


def kernel_specs() -> list[dict[str, object]]:
    """Inspection rows for ``repro kernels``: name, exactness, availability."""
    rows: list[dict[str, object]] = []
    for name in kernel_names():
        try:
            kernel = get_kernel(name)
            rows.append(
                {
                    "name": name,
                    "exact": kernel.exact,
                    "available": True,
                    "description": kernel.description,
                    "reason": None,
                }
            )
        except KernelUnavailableError as exc:
            rows.append(
                {
                    "name": name,
                    "exact": None,
                    "available": False,
                    "description": "",
                    "reason": str(exc),
                }
            )
    return rows


def _register_builtins() -> None:
    from .approx import ApproxTopKKernel
    from .compiled import CompiledKernel
    from .exact import ExactNumpyKernel

    register_kernel("exact_numpy", ExactNumpyKernel, aliases=("exact",))
    register_kernel("compiled", CompiledKernel, aliases=("c",))
    register_kernel("approx_topk", ApproxTopKKernel, aliases=("approx",))


_register_builtins()
