"""The differential kernel harness: measure any kernel against the oracle.

A kernel's claim -- bit-identical, or approximate-within-a-bound -- is only
worth anything if something measures it.  This harness runs a kernel and
the ``exact_numpy`` oracle over the *same scenario* (two independent
deployments, same seed, same compiled stimulus timeline, per-query server
sets recorded) and reports:

* **config divergence** -- the fraction of queries whose chosen server set
  differs from the oracle's (including drop-status mismatches);
* **latency deviation** -- percentiles of the per-query relative
  completion-latency deviation ``|d_k - d_oracle| / d_oracle`` over
  queries both runs completed.  Note this measures the *trajectory*
  deviation: an early divergent choice perturbs queue state, so later
  queries may deviate even where the kernel picks the oracle's
  configuration.  That is the honest end-to-end number -- it is what a
  user of the approximate mode actually experiences;
* **mean-delay deviation** -- the run-level relative mean-latency error.

``battery_divergence`` sweeps the full 8-scenario builtin battery, which
is how ``tests/test_kernels.py`` holds every inexact kernel inside its
documented :class:`~repro.kernels.base.DeviationBound` and every exact
kernel at literal zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .base import DeviationBound, SweepKernel
from .registry import get_kernel

__all__ = [
    "DivergenceReport",
    "battery_divergence",
    "render_divergence",
    "scenario_divergence",
]


class _ShadowOracle(SweepKernel):
    """Runs the oracle and the kernel on identical state, commits the
    kernel's choice, and records per-decision divergence and makespan
    regret.  This isolates the approximation itself from trajectory
    feedback (a divergent choice perturbs queues, so downstream *state*
    differs even when every later decision agrees)."""

    exact = False
    name = "shadow"

    def __init__(self, kernel: SweepKernel, oracle: SweepKernel) -> None:
        self.kernel = kernel
        self.oracle = oracle
        self.decisions = 0
        self.diverged = 0
        self.regrets: list[float] = []

    def bind(self, state) -> None:
        self.kernel.bind(state)
        self.oracle.bind(state)

    def select(self, state, entry, now):
        o_g, _o_pts, _o_sid = self.oracle.select(state, entry, now)
        k_g, k_pts, k_sid = self.kernel.select(state, entry, now)
        est = state.est  # both kernels derive from identical estimates
        self.decisions += 1
        if k_g != o_g:
            self.diverged += 1
        o_mk = max(float(est[g]) for g in o_g)
        k_mk = max(float(est[g]) for g in k_g)
        self.regrets.append((k_mk - o_mk) / o_mk if o_mk > 0 else 0.0)
        return k_g, k_pts, k_sid


@dataclass
class DivergenceReport:
    """One kernel-vs-oracle comparison over one scenario."""

    scenario: str
    kernel: str
    reference: str
    queries: int
    #: queries whose chosen server set (or drop status) differs between
    #: the two independent runs (trajectory metric).
    diverged: int
    #: queries compared for latency deviation (completed in both runs).
    compared: int
    latency_rel_p50: float
    latency_rel_p95: float
    latency_rel_p99: float
    latency_rel_max: float
    mean_delay_rel: float
    #: per-decision metrics from the shadow-oracle run (same state).
    decisions: int
    decision_diverged: int
    makespan_regret_p99: float
    makespan_regret_max: float

    @property
    def config_divergence(self) -> float:
        """Trajectory server-set divergence (between independent runs)."""
        return self.diverged / self.queries if self.queries else 0.0

    @property
    def decision_divergence(self) -> float:
        """Same-state decision divergence (the approximation itself)."""
        return self.decision_diverged / self.decisions if self.decisions else 0.0

    @property
    def identical(self) -> bool:
        return self.diverged == 0 and self.latency_rel_max == 0.0

    def within(self, bound: DeviationBound) -> bool:
        """Does this run stay inside a documented deviation bound?"""
        return (
            self.decision_divergence <= bound.decision_divergence
            and self.makespan_regret_p99 <= bound.makespan_regret_p99
            and self.latency_rel_p99 <= bound.latency_rel_p99
            and abs(self.mean_delay_rel) <= bound.mean_delay_rel
        )


def scenario_divergence(
    scenario,
    kernel: Union[str, SweepKernel],
    reference: Union[str, SweepKernel] = "exact_numpy",
) -> DivergenceReport:
    """Run *kernel* and *reference* over one scenario and compare.

    Both executions build their own deployment from the scenario's seed,
    so they see identical arrivals, stimuli, and randomness; the only
    degree of freedom is the scheduling kernel.  A third, shadow-oracle
    execution re-runs the kernel's trajectory with the oracle evaluated
    side-by-side on identical state, yielding the per-decision metrics.
    """
    from ..scenarios.runner import execute_scenario

    ref = execute_scenario(
        scenario, engine="batched", kernel=reference, record_assignments=True
    )
    got = execute_scenario(
        scenario, engine="batched", kernel=kernel, record_assignments=True
    )
    shadow = _ShadowOracle(get_kernel(kernel), get_kernel(reference))
    execute_scenario(scenario, engine="batched", kernel=shadow)
    ref_b, got_b = ref.batch, got.batch

    n = len(ref_b.arrivals)
    diverged = 0
    for a, b in zip(ref_b.assignments, got_b.assignments):
        if a != b:
            diverged += 1

    ref_lat = np.asarray(ref_b.latencies)
    got_lat = np.asarray(got_b.latencies)
    # drop-status mismatches already count as divergence above: a dropped
    # query records an empty server set, which cannot match a served one
    both = ~np.isnan(ref_lat) & ~np.isnan(got_lat)
    rel = np.abs(got_lat[both] - ref_lat[both]) / np.maximum(
        ref_lat[both], 1e-12
    )
    if rel.size:
        p50, p95, p99 = (float(np.percentile(rel, q)) for q in (50, 95, 99))
        rel_max = float(rel.max())
    else:  # pragma: no cover - an all-dropped run
        p50 = p95 = p99 = rel_max = math.nan
    ref_mean = float(ref_lat[both].mean()) if both.any() else math.nan
    got_mean = float(got_lat[both].mean()) if both.any() else math.nan
    mean_rel = (
        abs(got_mean - ref_mean) / ref_mean if ref_mean else math.nan
    )
    regrets = np.asarray(shadow.regrets) if shadow.regrets else np.zeros(1)
    return DivergenceReport(
        scenario=scenario.name,
        kernel=got.kernel,
        reference=ref.kernel,
        queries=n,
        diverged=diverged,
        compared=int(both.sum()),
        latency_rel_p50=p50,
        latency_rel_p95=p95,
        latency_rel_p99=p99,
        latency_rel_max=rel_max,
        mean_delay_rel=mean_rel,
        decisions=shadow.decisions,
        decision_diverged=shadow.diverged,
        makespan_regret_p99=float(np.percentile(regrets, 99)),
        makespan_regret_max=float(regrets.max()),
    )


def battery_divergence(
    kernel: Union[str, SweepKernel],
    n_servers: int = 12,
    duration: float = 15.0,
    p: int = 4,
    seed: int = 2,
    reference: Union[str, SweepKernel] = "exact_numpy",
    scenarios: Optional[Sequence] = None,
) -> list[DivergenceReport]:
    """Measure *kernel* against the oracle over the builtin battery."""
    from ..scenarios.matrix import builtin_scenarios

    get_kernel(kernel)  # fail fast on unknown/unavailable kernels
    if scenarios is None:
        scenarios = builtin_scenarios(
            n_servers=n_servers, duration=duration, p=p, seed=seed
        )
    return [
        scenario_divergence(s, kernel, reference=reference) for s in scenarios
    ]


def render_divergence(reports: Sequence[DivergenceReport]) -> str:
    """Aligned table of divergence reports (CLI / notebook convenience)."""
    from ..scenarios.matrix import render_table

    header = (
        "scenario",
        "kernel",
        "queries",
        "decision%",
        "regret_p99%",
        "traj%",
        "lat_p99%",
        "lat_max%",
        "mean%",
    )
    rows = []
    for r in reports:
        rows.append(
            [
                r.scenario,
                r.kernel,
                str(r.queries),
                f"{100.0 * r.decision_divergence:.1f}",
                f"{100.0 * r.makespan_regret_p99:.2f}",
                f"{100.0 * r.config_divergence:.1f}",
                f"{100.0 * r.latency_rel_p99:.2f}",
                f"{100.0 * r.latency_rel_max:.2f}",
                f"{100.0 * r.mean_delay_rel:.2f}",
            ]
        )
    return render_table(header, rows)
