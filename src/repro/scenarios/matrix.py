"""Scenario grids: sweep many environments, emit one comparable table.

This is the "Contracts" discipline applied to ROAR: a mechanism's
guarantees only mean something across a *matrix* of environments, so the
default battery stresses every axis the paper claims ROAR handles --
steady load, extreme heterogeneity, Zipf write skew, flash crowds, diurnal
cycles, correlated rack failures, membership churn, online re-partitioning
under a closed loop, and adversarial compositions of the above.

``repro matrix`` is the CLI veneer; tests sweep reduced grids.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..traces.spec import TraceSpec
from .runner import ScenarioResult, auto_rate, build_models, run_scenario_spec
from .spec import (
    AdmissionSpec,
    ChurnSpec,
    ControlSpec,
    EventSpec,
    Scenario,
    UpdateSpec,
    WorkloadSpec,
)

__all__ = [
    "MatrixResult",
    "builtin_scenarios",
    "render_table",
    "run_matrix",
    "trace_scenario",
]


def builtin_scenarios(
    n_servers: int = 20,
    duration: float = 40.0,
    p: int = 4,
    dataset_size: float = 2_000_000.0,
    seed: int = 1,
    rate: float | None = None,
) -> list[Scenario]:
    """The default battery: ten environments over one cluster shape.

    *rate* defaults to ~35% pool utilisation so differences between
    scenarios come from their stimuli, not from baseline overload.  The
    two ``*-overload`` scenarios deliberately exceed pool capacity and
    carry an :class:`~repro.scenarios.spec.AdmissionSpec` (default policy
    ``none``, so they stay bit-identical accept-all runs) whose tuning
    knobs are shared across policies -- ``repro matrix --admission
    none,aimd,delay_gated`` compares shedding policies Contracts-style on
    identical stimuli.
    """
    probe = Scenario(name="_probe", n_servers=n_servers, p=p, dataset_size=dataset_size)
    hen_models = build_models(probe)
    base_rate = rate if rate is not None else auto_rate(hen_models, p, dataset_size)
    # hetero-extreme keeps the hen pool's mean speed but with a 4x spread,
    # so its stress is the *heterogeneity*, not a miscalibrated load.
    mean_speed = sum(m.speed(True) for m in hen_models) / len(hen_models)
    pattern = [4.0 if i % 4 == 0 else 1.0 for i in range(n_servers)]
    scale = mean_speed / (sum(pattern) / len(pattern))
    hetero_speeds = tuple(scale * x for x in pattern)

    def wl(kind: str, **kw) -> WorkloadSpec:
        return WorkloadSpec(kind=kind, rate=base_rate, duration=duration, **kw)

    common = dict(
        n_servers=n_servers, p=p, dataset_size=dataset_size, seed=seed
    )
    t = duration  # shorthand for event timing
    # pool capacity (100% utilisation) anchors the overload scenarios and
    # the AIMD rate knobs, so "2x overload" means 2x regardless of shape
    cap_rate = auto_rate(hen_models, p, dataset_size, target_util=1.0)
    overload_admission = AdmissionSpec(
        policy="none",  # accept-all default; --admission swaps the policy
        slo=1.0,
        window=5.0,
        cap_multiple=0.5,
        tick=1.0,
        floor=0.25 * cap_rate,
        capacity=1.25 * cap_rate,
        rate=0.75 * cap_rate,
        increase=0.05 * cap_rate,
        decrease=0.5,
        burst=4.0,
    )
    return [
        Scenario(
            name="steady",
            description="Poisson baseline on the heterogeneous hen fleet",
            workload=wl("poisson"),
            **common,
        ),
        Scenario(
            name="hetero-extreme",
            description="4x speed spread; scheduler must exploit fast nodes",
            workload=wl("poisson"),
            fleet="custom",
            speeds=hetero_speeds,
            **common,
        ),
        Scenario(
            name="zipf-updates",
            description="steady queries + Zipf-1.1 update skew on hot arcs",
            workload=wl("poisson"),
            updates=UpdateSpec(rate=4.0 * base_rate, zipf_s=1.1),
            events=(EventSpec(at=0.6 * t, action="rebalance"),),
            **common,
        ),
        Scenario(
            name="flash-crowd",
            description="4x surge for 30% of the run, exponential decay",
            workload=wl("flash-crowd"),
            **common,
        ),
        Scenario(
            name="diurnal",
            description="one 3:1 peak-to-trough sinusoidal period",
            workload=wl("diurnal"),
            **common,
        ),
        Scenario(
            name="rack-failure",
            description="a quarter of the fleet fail-stops under ~65% load",
            # ~65% baseline load: the survivors absorb the dead quarter's
            # work, so the failure is visible as queueing, not just yield.
            workload=WorkloadSpec(
                kind="poisson", rate=1.8 * base_rate, duration=duration
            ),
            events=(
                EventSpec(at=0.4 * t, action="fail-rack", count=max(2, n_servers // 4)),
                EventSpec(at=0.7 * t, action="rebuild"),
            ),
            **common,
        ),
        Scenario(
            name="churn",
            description="a server joins and one drains every few seconds",
            workload=wl("poisson"),
            churn=ChurnSpec(interval=max(2.0, duration / 10.0), add=1, remove=1),
            **common,
        ),
        Scenario(
            name="crowd-x-rack",
            description="flash crowd AND rack failure mid-surge, SLO loop on",
            workload=wl("flash-crowd"),
            events=(
                EventSpec(at=0.45 * t, action="fail-rack", count=max(2, n_servers // 8)),
                EventSpec(at=0.8 * t, action="recover"),
            ),
            control=ControlSpec(
                policies=("elasticity",),
                slo_p99=1.0,
                interval=max(2.0, duration / 16.0),
            ),
            **common,
        ),
        Scenario(
            name="sustained-overload",
            description="Poisson at 2x pool capacity; shed or drown",
            workload=WorkloadSpec(
                kind="poisson", rate=2.0 * cap_rate, duration=duration
            ),
            admission=overload_admission,
            **common,
        ),
        Scenario(
            name="flash-overload",
            description="flash crowd surging 5x past 60% baseline load",
            workload=WorkloadSpec(
                kind="flash-crowd",
                rate=0.6 * cap_rate,
                duration=duration,
                surge_factor=5.0,
            ),
            admission=overload_admission,
            **common,
        ),
    ]


def trace_scenario(
    source: str,
    loader: str | None = None,
    name: str = "trace",
    n_servers: int = 20,
    p: int = 4,
    dataset_size: float = 2_000_000.0,
    seed: int = 1,
    time_scale: float = 1.0,
    limit: int | None = None,
) -> Scenario:
    """A scenario replaying the external request log *source*.

    The trace's arrivals (and any update rows) drive the engines through
    the exact-time action queue, so a real log is a first-class matrix
    row alongside the synthetic battery (``repro matrix --trace``).
    """
    return Scenario(
        name=name,
        description=f"replay of {source}",
        workload=TraceSpec(
            source=str(source), loader=loader,
            time_scale=time_scale, limit=limit,
        ),
        n_servers=n_servers,
        p=p,
        dataset_size=dataset_size,
        seed=seed,
    )


@dataclass
class MatrixResult:
    """Results of one grid sweep, renderable as an aligned table or CSV."""

    results: list[ScenarioResult] = field(default_factory=list)

    COLUMNS = (
        "scenario",
        "engine",
        "kernel",
        "servers",
        "p/pq",
        "queries",
        "yield%",
        "mean_ms",
        "p99_ms",
        "qps",
        "util%",
        "updates",
        "events",
        "ctl",
        "adm",
        "goodput",
        "shed%",
        "plan_p",
        "wall_s",
    )

    def rows(self) -> list[list[str]]:
        out = []
        for r in self.results:
            srv = (
                f"{r.servers_start}"
                if r.servers_start == r.servers_end
                else f"{r.servers_start}->{r.servers_end}"
            )
            out.append(
                [
                    r.scenario.name,
                    r.engine,
                    r.kernel,
                    srv,
                    f"{r.p_store_end:g}/{r.pq_end}",
                    str(r.offered),
                    f"{100.0 * r.yield_fraction:.1f}",
                    _ms(r.mean_delay),
                    _ms(r.p99_delay),
                    f"{r.throughput:.1f}",
                    f"{100.0 * r.mean_utilisation:.0f}",
                    str(r.updates_applied),
                    str(r.events_applied),
                    str(r.control_actions),
                    (
                        r.scenario.admission.policy.partition(":")[0]
                        if r.scenario.admission is not None
                        else "-"
                    ),
                    "-" if math.isnan(r.goodput) else f"{r.goodput:.1f}",
                    f"{100.0 * r.shed_rate:.1f}",
                    "-" if r.planned_p is None else str(r.planned_p),
                    f"{r.wall_seconds:.2f}",
                ]
            )
        return out

    def table(self) -> str:
        return render_table(self.COLUMNS, self.rows())

    def to_csv(self) -> str:
        lines = [",".join(self.COLUMNS)]
        for row in self.rows():
            lines.append(",".join(str(c) for c in row))
        return "\n".join(lines) + "\n"


def _ms(x: float) -> str:
    if math.isnan(x):
        return "-"
    return f"{1000.0 * x:.1f}"


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def run_matrix(
    scenarios: Sequence[Scenario],
    engine: str = "batched",
    kernel: str | None = None,
    progress: Optional[Callable[[Scenario, ScenarioResult], None]] = None,
    archive_dir: str | None = None,
) -> MatrixResult:
    """Run every scenario and collect the comparable table.

    *kernel* overrides every scenario's ``kernel:`` field (batched engine
    only; the reference engine schedules through the original heap).
    *archive_dir* writes one compressed telemetry archive
    (``<scenario>.npz``; see :mod:`repro.telemetry.archive`) per scenario.
    """
    if archive_dir is not None:
        os.makedirs(archive_dir, exist_ok=True)
    out = MatrixResult()
    for scenario in scenarios:
        archive_path = (
            os.path.join(archive_dir, f"{scenario.name}.npz")
            if archive_dir is not None
            else None
        )
        result = run_scenario_spec(
            scenario, engine=engine, kernel=kernel, archive_path=archive_path
        )
        out.results.append(result)
        if progress is not None:
            progress(scenario, result)
    return out
