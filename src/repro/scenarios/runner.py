"""Executes a declarative :class:`~repro.scenarios.spec.Scenario`.

One runner drives every layer the same way regardless of what the scenario
throws at it: the deployment serves the arrival trace (on the batched fast
path by default, or the per-query reference path), timed events and churn
edit the membership, Zipf-skewed updates heat replica holders, and -- when a
:class:`ControlSpec` is present -- the PR-1 control plane (metrics collector,
SLO elasticity, online re-partitioning) closes the loop at its tick
interval, actuating through the same
:class:`~repro.control.runner.DeploymentActuator` the closed-loop runner
uses.

Execution has **exact event-time semantics**: every stimulus (event, churn
tick, control tick, individual update) is compiled to an
:class:`~repro.sim.fastpath.Action` bound to the precise query index where
its timestamp falls, and the batched engine fires it *between those two
queries* with fully materialised deployment state.  A mid-batch update is
therefore visible to the very next query -- the old segment-batched runner's
"updates land up to ``batch_interval`` late" caveat is gone, at full batch
speed (``UpdateSpec.batch_interval`` is deprecated and ignored; passing it
warns).  The ``engine="reference"`` backend replays the same action schedule
through the per-query path, so both engines agree on *when* every stimulus
lands.  Discrete-event work scheduled on the internal
:class:`~repro.sim.engine.Simulation` (reconfiguration node steps, delayed
elastic grows) is pumped at every action instant, exactly as often as the
old boundary scheme and at the same timestamps.  Every random choice derives
from ``Scenario.seed``; two runs of one scenario are identical.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Optional, Sequence

import numpy as _np

from ..cluster.deployment import Deployment, DeploymentConfig
from ..cluster.models import MODEL_CATALOGUE, ServerModel, ec2_fleet, hen_testbed
from ..control.controllers import (
    Controller,
    RepartitionController,
    SLOElasticityController,
)
from ..control.metrics import MetricsCollector
from ..control.runner import DeploymentActuator
from ..core.reconfig import ReconfigPhase
from ..sim.engine import Simulation
from ..sim.energy import PowerProfile
from ..sim.fastpath import Action, run_queries_reference
from ..sim.workload import (
    batched_arrivals_from_rate_fn,
    batched_uniform_times,
    zipf_update_times,
)
from ..traces.spec import TraceSpec
from .spec import Scenario

__all__ = [
    "ScenarioExecution",
    "ScenarioResult",
    "auto_rate",
    "build_deployment",
    "build_models",
    "execute_scenario",
    "generate_arrivals",
    "run_scenario_spec",
]

ENGINES = ("batched", "reference")


# -- fleet construction -------------------------------------------------------
def build_models(scenario: Scenario) -> list[ServerModel]:
    if scenario.fleet == "hen":
        return hen_testbed(scenario.n_servers)
    if scenario.fleet == "ec2":
        return ec2_fleet(scenario.n_servers, seed=scenario.seed + 17)
    if scenario.fleet == "uniform":
        return [MODEL_CATALOGUE["dell-1950"]] * scenario.n_servers
    # custom: explicit per-server speeds (cores=1 so speed() == match_rate).
    base = MODEL_CATALOGUE["dell-1950"]
    return [
        ServerModel(
            name=f"custom-{i}",
            cores=1,
            match_rate=speed,
            disk_rate=speed,
            fixed_overhead=base.fixed_overhead,
            power=PowerProfile(idle_watts=200.0, busy_watts=300.0),
        )
        for i, speed in enumerate(scenario.speeds or ())
    ]


def auto_rate(
    models: Sequence[ServerModel],
    p: int,
    dataset_size: float,
    target_util: float = 0.35,
) -> float:
    """Arrival rate putting the pool at roughly *target_util* utilisation."""
    mean_speed = sum(m.speed(True) for m in models) / len(models)
    mean_fixed = sum(m.fixed_overhead for m in models) / len(models)
    service = mean_fixed + (dataset_size / p) / mean_speed
    return target_util * len(models) / (p * service)


def build_deployment(scenario: Scenario) -> Deployment:
    return Deployment(
        DeploymentConfig(
            models=build_models(scenario),
            p=scenario.p,
            n_rings=scenario.n_rings,
            dataset_size=scenario.dataset_size,
            seed=scenario.seed,
            store_objects=scenario.needs_stores,
            n_objects_stored=scenario.n_objects_stored,
            charge_scheduling=False,  # scenarios pin simulated latency only
        )
    )


# -- workload -----------------------------------------------------------------
def _vector_rate_fn(scenario: Scenario):
    """Array-capable rate(t) for the batched thinning sampler."""
    w = scenario.workload
    d = w.duration
    if w.kind == "poisson":
        rate = w.rate
        return (lambda t: _np.full_like(_np.asarray(t, dtype=float), rate)), rate
    if w.kind == "diurnal":
        amp = (w.peak_to_trough - 1.0) / (w.peak_to_trough + 1.0)
        base = w.rate

        def rate_fn(t):
            # start at the trough, peak mid-run (the control runner's phase)
            return base * (
                1.0 + amp * _np.sin(2.0 * _np.pi * _np.asarray(t) / d - _np.pi / 2.0)
            )

        return rate_fn, base * (1.0 + amp)
    if w.kind == "flash-crowd":
        base = w.rate
        peak = base * w.surge_factor
        t0 = w.surge_start_frac * d
        t1 = t0 + w.surge_duration_frac * d
        decay = max(w.decay_frac * d, 1e-9)

        def rate_fn(t):
            t = _np.asarray(t, dtype=float)
            after = base + (peak - base) * _np.exp(-(t - t1) / decay)
            return _np.where(t < t0, base, _np.where(t <= t1, peak, after))

        return rate_fn, peak
    if w.kind == "ramp":
        end = w.end_rate if w.end_rate is not None else 2.0 * w.rate

        def rate_fn(t):
            t = _np.asarray(t, dtype=float)
            fracs = _np.clip(t / d, 0.0, 1.0)
            return w.rate + fracs * (end - w.rate)

        return rate_fn, max(w.rate, end)
    raise ValueError(f"no rate function for workload kind {w.kind!r}")


def generate_arrivals(scenario: Scenario) -> "_np.ndarray":
    """The scenario's full arrival trace (identical for either engine)."""
    w = scenario.workload
    if isinstance(w, TraceSpec):
        return w.load().arrivals
    if w.kind == "replay":
        return _np.asarray(sorted(w.trace or ()), dtype=float)
    if w.kind == "uniform":
        return batched_uniform_times(w.rate, w.duration)
    rate_fn, max_rate = _vector_rate_fn(scenario)
    return batched_arrivals_from_rate_fn(
        rate_fn, horizon=w.duration, max_rate=max_rate, seed=scenario.seed + 101
    )


def _generate_updates(scenario: Scenario, horizon: float):
    """Zipf-skewed (time, ring position) update stream."""
    spec = scenario.updates
    if spec is None:
        return []
    return zipf_update_times(
        spec.rate,
        horizon,
        hotspots=spec.hotspots,
        zipf_s=spec.zipf_s,
        jitter=spec.jitter,
        seed=scenario.seed + 211,
    )


# -- results ------------------------------------------------------------------
@dataclass
class ScenarioExecution:
    """Raw outcome of one scenario execution (pre-summary).

    What the differential kernel harness consumes: the live deployment,
    the engine's array-backed :class:`~repro.sim.fastpath.BatchResult`
    (including per-query assignments when requested), and the execution
    bookkeeping the summary layer folds into a :class:`ScenarioResult`.
    """

    scenario: Scenario
    engine: str
    kernel: str
    deployment: Deployment
    batch: object  # BatchResult
    servers_start: int
    horizon: float
    updates_applied: int
    events_applied: int
    controllers: list
    pq_end: int
    notes: list[str]
    wall_seconds: float
    #: the control plane's :class:`~repro.obs.audit.DecisionLog` (None
    #: when the scenario has no control spec).
    decisions: object = None
    #: the admission controller (an
    #: :class:`~repro.admission.base.AdmissionPolicy` carrying its
    #: :class:`~repro.admission.records.ShedLog`); None when the scenario
    #: has no admission spec or the policy is accept-all.
    admission: object = None


@dataclass
class ScenarioResult:
    """Comparable metrics for one scenario run."""

    scenario: Scenario
    engine: str
    kernel: str
    offered: int
    completed: int
    dropped: int
    yield_fraction: float
    mean_delay: float
    p99_delay: float
    max_delay: float
    throughput: float
    mean_utilisation: float
    servers_start: int
    servers_end: int
    p_store_end: float
    pq_end: int
    updates_applied: int
    events_applied: int
    control_actions: int
    #: what the Chapter 2 capacity advisor would have picked for this load.
    planned_p: int | None
    wall_seconds: float
    fast_fraction: float
    #: queries refused by the admission controller (0 without one).
    shed: int = 0
    #: shed / offered.
    shed_rate: float = 0.0
    #: completed queries meeting the admission SLO, per second of horizon
    #: (NaN when the scenario has no admission spec to define the SLO).
    goodput: float = math.nan
    #: the admission SLO the goodput column is measured against.
    slo: float | None = None
    notes: list[str] = field(default_factory=list)


# -- execution ----------------------------------------------------------------
def execute_scenario(
    scenario: Scenario,
    engine: str = "batched",
    kernel: str | None = None,
    record_assignments: bool = False,
    archive_path: str | None = None,
    record_path: str | None = None,
    stimulus=None,
) -> ScenarioExecution:
    """Execute one scenario end to end; returns the raw execution.

    *kernel* overrides ``scenario.kernel`` (batched engine only).  With
    *record_assignments* the batch result carries every query's server
    set -- what the kernel divergence harness compares.  *archive_path*
    streams the run's telemetry columns into a compressed archive as the
    run progresses (:class:`repro.telemetry.archive.ArchiveWriter`).

    *record_path* freezes the drawn stimulus (arrivals + exact-time
    updates) and the run's baseline telemetry as a recording
    (:mod:`repro.traces.record`); *stimulus* injects a previously
    recorded :class:`~repro.traces.record.Stimulus` instead of drawing
    one -- the replay half of record-then-replay.  Archives written while
    recording or replaying omit the wall-clock-derived columns, so two
    such archives of the same stimulus diff byte-identically.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
    kernel = kernel if kernel is not None else scenario.kernel
    wall_start = time.perf_counter()
    deployment = build_deployment(scenario)
    servers_start = len(deployment.servers)
    # -- stimulus: drawn from the scenario, or injected verbatim -----------
    trace_updates: list[tuple[float, float]] = []
    if stimulus is not None:
        arrivals = _np.asarray(stimulus.arrivals, dtype=float)
        horizon = float(stimulus.horizon)
        update_stream = list(stimulus.updates)
    else:
        w = scenario.workload
        if isinstance(w, TraceSpec):
            trace = w.load()  # load once: arrivals, horizon and updates
            arrivals = trace.arrivals
            horizon = float(trace.horizon)
            trace_updates = list(trace.updates)
        else:
            arrivals = generate_arrivals(scenario)
            horizon = float(w.horizon)
        # seed-drawn Zipf updates first, then trace-supplied ones: the
        # action compiler's stable sort keeps this insertion order on
        # same-index ties, and recordings replay the same concatenation,
        # so record and replay see identical update ordering.
        update_stream = list(_generate_updates(scenario, horizon)) + trace_updates
    sim = Simulation()
    event_rng = random.Random(scenario.seed + 31)
    notes: list[str] = []

    # control plane (optional)
    collector: Optional[MetricsCollector] = None
    controllers: list[Controller] = []
    actuator: Optional[DeploymentActuator] = None
    ctl = scenario.control
    decision_log = None
    if ctl is not None:
        from ..obs.audit import DecisionLog

        decision_log = DecisionLog()
        collector = MetricsCollector(window=ctl.metrics_window).attach(deployment)
        shim = SimpleNamespace(
            p0=scenario.p,
            drop_seconds=ctl.drop_seconds,
            grow_seconds=ctl.grow_seconds,
            growth_model=ctl.growth_model,
        )
        actuator = DeploymentActuator(deployment, sim, shim)
        if scenario.pq is not None:
            actuator.set_pq(scenario.pq)
        if "elasticity" in ctl.policies:
            controllers.append(
                SLOElasticityController(
                    actuator,
                    slo_p99=ctl.slo_p99,
                    min_servers=ctl.min_servers or max(2, scenario.n_servers // 2),
                    max_servers=ctl.max_servers or 2 * scenario.n_servers,
                    cooldown=2 * ctl.interval,
                )
            )
        if "repartition" in ctl.policies:
            controllers.append(
                RepartitionController(
                    actuator,
                    slo_p99=ctl.slo_p99,
                    p_min=ctl.p_min or max(1, scenario.p - 2),
                    p_max=ctl.p_max
                    or max(scenario.p, min(4 * scenario.p, scenario.n_servers)),
                    cooldown=3 * ctl.interval,
                )
            )
        for controller in controllers:
            controller.decision_log = decision_log

    # admission controller (optional; accept-all resolves to None so the
    # engine takes the untouched bit-identical code path)
    from ..admission.registry import build_admission

    admission_controller = build_admission(scenario.admission)

    # -- compile the stimulus timeline to exact query indices --------------
    # Each entry becomes an Action at the index of the first query arriving
    # strictly after its timestamp, so it lands between two specific
    # queries.  Same-time entries keep the old boundary ordering
    # (updates, then events, then churn, then control).
    entries: list[tuple[float, int, int, str, object]] = []  # (t, prio, seq, kind, payload)
    seq = 0

    def add_entry(t: float, prio: int, kind: str, payload: object) -> None:
        nonlocal seq
        entries.append((t, prio, seq, kind, payload))
        seq += 1

    for e in scenario.events:
        if e.at <= horizon:
            add_entry(e.at, 0, "event", e)
    if scenario.churn is not None:
        c = scenario.churn
        stop = c.stop if c.stop is not None else horizon
        t = c.start + c.interval
        while t <= min(stop, horizon):
            add_entry(t, 1, "churn", c)
            t += c.interval
    if ctl is not None:
        t = ctl.interval
        while t <= horizon:
            add_entry(t, 2, "control", None)
            t += ctl.interval
    if admission_controller is not None:
        t = scenario.admission.tick
        while t <= horizon:
            add_entry(t, 3, "admission", None)
            t += scenario.admission.tick
    for t_u, pos in update_stream:
        add_entry(t_u, -1, "update", (t_u, pos))

    updates_applied = 0
    current_pq = scenario.pq or scenario.p
    events_applied = 0

    def pq_now() -> int:
        return actuator.pq if actuator is not None else current_pq

    def apply_event(e, now: float) -> None:
        nonlocal current_pq, events_applied
        events_applied += 1
        alive = sorted(
            n for n, s in deployment.servers.items() if not s.failed
        )
        if e.action == "fail":
            names = [e.target] if e.target else event_rng.sample(
                alive, min(e.count, len(alive))
            )
            for name in names:
                deployment.fail_node(name, now)
        elif e.action == "fail-rack":
            by_idx = sorted(alive, key=lambda n: int(n.split("-")[-1]))
            hi = max(1, len(by_idx) - e.count)
            start = e.value if e.value is not None else event_rng.randrange(hi)
            for name in by_idx[start : start + e.count]:
                deployment.fail_node(name, now)
        elif e.action == "rebuild":
            dead = [n for n, s in deployment.servers.items() if s.failed]
            for name in [e.target] if e.target else dead:
                if name in deployment.servers and deployment.servers[name].failed:
                    try:
                        deployment.handle_long_term_failure(name, now=now)
                    except ValueError:
                        notes.append(f"rebuild skipped last node {name}")
        elif e.action == "recover":
            dead = [n for n, s in deployment.servers.items() if s.failed]
            for name in [e.target] if e.target else dead:
                if name in deployment.servers:
                    deployment.recover_node(name, now)
        elif e.action == "add-server":
            for _ in range(e.count):
                deployment.add_server(MODEL_CATALOGUE[e.model], now=now)
        elif e.action == "remove-server":
            for _ in range(e.count):
                if e.target and e.target in deployment.servers:
                    name = e.target
                else:
                    cool = deployment.membership.coolest_node(deployment.rings[0])
                    name = cool.name if cool else None
                if name is None:
                    break
                try:
                    deployment.remove_server(name, now=now)
                except ValueError:
                    notes.append("remove-server skipped (last ring node)")
                    break
        elif e.action == "rebalance":
            deployment.membership.move_cool_to_hot(0)
        elif e.action == "set-pq":
            current_pq = max(
                int(e.value), int(math.ceil(deployment.p_store - 1e-9))
            )
            if actuator is not None:
                actuator.set_pq(int(e.value))
        elif e.action == "repartition":
            if actuator is not None:
                if actuator.request_p(int(e.value)):
                    actuator.set_pq(max(actuator.pq, int(e.value)))
            else:
                _repartition_inline(deployment, sim, int(e.value), notes)
                # raising p shrinks arcs: pq must follow immediately
                # (Section 4.5); lowering p leaves pq at the old floor until
                # the downloads complete.
                current_pq = max(current_pq, int(e.value))

    def apply_churn(c, t: float) -> None:
        nonlocal events_applied
        events_applied += 1
        for _ in range(c.add):
            deployment.add_server(MODEL_CATALOGUE[c.model], now=t)
        for _ in range(c.remove):
            cool = deployment.membership.coolest_node(deployment.rings[0])
            if cool is None or len(deployment.rings[0]) <= max(2, scenario.p):
                break
            try:
                deployment.remove_server(cool.name, now=t)
            except ValueError:
                break

    def apply_updates(items) -> None:
        nonlocal updates_applied
        for t_u, pos in items:
            deployment.apply_update(t_u, at=pos)
            updates_applied += 1

    def apply_control(t: float, query_index: int = -1) -> None:
        assert collector is not None
        collector.sample_servers(t, deployment.servers)
        snapshot = collector.snapshot(t)
        for controller in controllers:
            controller.step(t, snapshot, query_index=query_index)

    # Scope tells the batched engine how much mirror state an action may
    # have invalidated.  The simulation pump can fire delayed elastic
    # grow/shrink callbacks whenever a control loop is active, so every
    # action is conservatively "membership" in that case.
    # set-pq mutates no server state itself, but its fire() still pumps the
    # simulation, which can complete an in-flight repartition -- "busy"
    # re-reads p_store (and queues) so the engine's mirror stays exact.
    _EVENT_SCOPES = {
        "fail": "values",
        "recover": "values",
        "fail-rack": "values",
        "set-pq": "busy",
    }

    def make_action(t: float, kind: str, payload: object, index: int) -> Action:
        def fire(now: float) -> int:
            sim.run(until=now)  # fire pending reconfiguration steps
            if kind == "event":
                apply_event(payload, now)
            elif kind == "churn":
                apply_churn(payload, now)
            elif kind == "updates":
                apply_updates(payload)
            elif kind == "control":
                # the action's own index IS the tick's exact position in
                # the arrival stream -- it lands in the decision log
                apply_control(now, query_index=index)
            elif kind == "admission":
                admission_controller.tick(now, query_index=index)
            return pq_now()

        if ctl is not None:
            scope = "membership"
        elif kind == "event":
            scope = _EVENT_SCOPES.get(payload.action, "membership")
        elif kind == "updates":
            scope = "busy"
        elif kind == "admission":
            # mutates controller state only, but the fire() pump can
            # complete an in-flight event-driven repartition (see set-pq)
            scope = "busy"
        else:
            scope = "membership"
        return Action(index=index, time=t, fn=fire, scope=scope)

    # merge sort (time, then old boundary priority), then bind to indices;
    # consecutive same-index updates coalesce into one action.
    entries.sort(key=lambda en: (en[0], en[1], en[2]))
    if entries:
        idx_of = _np.searchsorted(
            arrivals, _np.array([en[0] for en in entries]), side="right"
        ).tolist()
    else:
        idx_of = []
    actions: list[Action] = []
    k = 0
    while k < len(entries):
        t, _prio, _seq, kind, payload = entries[k]
        index = int(idx_of[k])
        if kind == "update":
            batch = [payload]
            while (
                k + 1 < len(entries)
                and entries[k + 1][3] == "update"
                and int(idx_of[k + 1]) == index
            ):
                k += 1
                batch.append(entries[k][4])
            actions.append(make_action(t, "updates", batch, index))
        else:
            actions.append(make_action(t, kind, payload, index))
        k += 1

    # telemetry archive: streamed append-per-chunk during the run, so a
    # day-scale trace replay never holds its columns in memory twice.
    # Record/replay archives omit the wall-clock columns -- those measure
    # this machine, not the simulated system, and would break the
    # bit-identity diff between a recorded run and its replay.
    archive_writer = None
    if archive_path is not None:
        from ..telemetry.archive import ArchiveWriter

        archive_writer = ArchiveWriter(
            archive_path,
            meta={
                "scenario": scenario.name,
                "engine": engine,
                "seed": scenario.seed,
                "n_servers": scenario.n_servers,
                "p": scenario.p,
            },
            wall_columns=(record_path is None and stimulus is None),
        )
        deployment.chunk_listeners.append(archive_writer)

    # drive it: one engine call, stimuli land at exact query indices
    try:
        if engine == "batched":
            from ..kernels import get_kernel
            from ..kernels.registry import canonical_spec

            # resolve once (the engine reuses the instance) and keep any
            # parameter suffix in the reported name, so a stride=32 run is
            # distinguishable from a stride=8 run in the matrix table
            kernel_obj = get_kernel(kernel)
            kernel_name = (
                canonical_spec(kernel) if isinstance(kernel, str) else kernel_obj.name
            )
            batch_result = deployment.run_queries_fast(
                arrivals,
                pq_now(),
                actions=actions,
                kernel=kernel_obj,
                record_assignments=record_assignments,
                admission=admission_controller,
            )
        else:
            batch_result = run_queries_reference(
                deployment,
                arrivals,
                pq_now(),
                actions=actions,
                record_assignments=record_assignments,
                admission=admission_controller,
            )
            kernel_name = "reference"
        sim.run(until=horizon)  # drain sim work scheduled after the last action
    except BaseException:
        if archive_writer is not None:
            archive_writer.abort()
        raise

    from ..obs.manifest import build_manifest
    from .spec import scenario_to_dict

    manifest = build_manifest(
        kernel=kernel_name,
        seeds={"scenario": scenario.seed},
        config=scenario_to_dict(scenario),
        extra={"engine": engine},
    )

    if archive_writer is not None:
        deployment.chunk_listeners.remove(archive_writer)
        close_meta = {"kernel": kernel_name, "manifest": manifest}
        extra_columns = None
        if decision_log is not None:
            # decision records are simulated-time quantities: they diff
            # bit-identically across engines, unlike wall-clock columns
            extra_columns = decision_log.columns()
            close_meta["decisions"] = decision_log.meta(window=ctl.metrics_window)
        if admission_controller is not None:
            # shed_*/adm_* rows are simulated-time too; the per-chunk
            # shedchunk_* rows depend on engine chunking and are skipped
            # by archive_diff's gated mode like wall-clock columns
            extra_columns = {
                **(extra_columns or {}),
                **admission_controller.log.columns(),
            }
            close_meta["admission"] = admission_controller.meta()
        archive_writer.close(
            dropped=deployment.log.dropped,
            meta=close_meta,
            extra_columns=extra_columns,
        )

    if record_path is not None:
        from ..traces.record import Stimulus, write_recording

        write_recording(
            record_path,
            scenario,
            Stimulus(
                arrivals=arrivals,
                updates=tuple(update_stream),
                horizon=horizon,
            ),
            deployment,
            engine=engine,
            kernel=kernel_name,
            manifest=manifest,
        )

    return ScenarioExecution(
        scenario=scenario,
        engine=engine,
        kernel=kernel_name,
        deployment=deployment,
        batch=batch_result,
        servers_start=servers_start,
        horizon=horizon,
        updates_applied=updates_applied,
        events_applied=events_applied,
        controllers=controllers,
        pq_end=pq_now(),
        notes=notes,
        wall_seconds=time.perf_counter() - wall_start,
        decisions=decision_log,
        admission=admission_controller,
    )


def run_scenario_spec(
    scenario: Scenario,
    engine: str = "batched",
    kernel: str | None = None,
    archive_path: str | None = None,
) -> ScenarioResult:
    """Execute one scenario end to end and summarise it."""
    ex = execute_scenario(
        scenario, engine=engine, kernel=kernel, archive_path=archive_path
    )
    deployment = ex.deployment
    horizon = ex.horizon
    log = deployment.log
    delays = log.delays()
    completed = len(delays)
    batch = ex.batch
    shed = getattr(batch, "shed", 0)
    offered = completed + log.dropped + shed
    mean_delay = (sum(delays) / completed) if completed else math.nan
    control_actions = sum(len(c.actions) for c in ex.controllers)
    planned = _planned_p(scenario, deployment, offered, horizon)
    elapsed = max(horizon, 1e-9)
    fast_n = batch.fast_scheduled
    delegated_n = batch.delegated
    # goodput = completed queries meeting the admission SLO, per second;
    # only defined when the scenario declares an SLO (AdmissionSpec) --
    # the Contracts-style overload column where accept-all loses
    slo = scenario.admission.slo if scenario.admission is not None else None
    if slo is not None:
        goodput = sum(1 for d in delays if d <= slo) / elapsed
    else:
        goodput = math.nan
    return ScenarioResult(
        scenario=scenario,
        engine=ex.engine,
        kernel=ex.kernel,
        offered=offered,
        completed=completed,
        dropped=log.dropped,
        yield_fraction=log.yield_fraction(),
        mean_delay=mean_delay,
        p99_delay=log.percentile_delay(99) if completed else math.nan,
        max_delay=max(delays) if completed else math.nan,
        throughput=completed / elapsed,
        mean_utilisation=deployment.mean_cpu_load(elapsed),
        servers_start=ex.servers_start,
        servers_end=len(deployment.servers),
        p_store_end=deployment.p_store,
        pq_end=ex.pq_end,
        updates_applied=ex.updates_applied,
        events_applied=ex.events_applied,
        control_actions=control_actions,
        planned_p=planned,
        wall_seconds=ex.wall_seconds,
        fast_fraction=fast_n / max(fast_n + delegated_n, 1),
        shed=shed,
        shed_rate=shed / offered if offered else 0.0,
        goodput=goodput,
        slo=slo,
        notes=ex.notes,
    )


def _repartition_inline(
    deployment: Deployment, sim: Simulation, p_new: int, notes: list[str]
) -> None:
    """Event-driven p change without a control actuator (spread over 5 s)."""
    rc = deployment.reconfig
    if rc is None:
        notes.append("repartition skipped: scenario has no object stores")
        return
    if rc.phase != ReconfigPhase.STABLE or p_new == rc.p_target:
        notes.append(f"repartition to {p_new} skipped (not stable or no-op)")
        return
    rc.request_p(p_new)
    names = sorted(node.name for node in rc.ring)
    for i, name in enumerate(names):
        sim.schedule(5.0 * (i + 1) / len(names), lambda n=name: rc.node_step(n))


def _planned_p(
    scenario: Scenario, deployment: Deployment, offered: int, horizon: float
) -> int | None:
    """The analysis layer's recommendation for the load this scenario saw."""
    try:
        from ..analysis.planner import WorkloadSpec as PlannerSpec
        from ..analysis.planner import recommend_configuration

        speeds = [s.speed for s in deployment.servers.values() if not s.failed]
        if not speeds or offered == 0:
            return None
        target = (
            scenario.control.slo_p99 / 2.0 if scenario.control is not None else 0.5
        )
        rec = recommend_configuration(
            PlannerSpec(
                dataset_size=scenario.dataset_size,
                query_rate=offered / max(horizon, 1e-9),
                update_rate=scenario.updates.rate if scenario.updates else 0.0,
                target_delay=target,
                speeds=speeds,
                fixed_overhead=sum(
                    s.fixed_overhead for s in deployment.servers.values()
                )
                / len(deployment.servers),
            )
        )
        return rec.chosen.p if rec.chosen is not None else None
    except Exception:  # pragma: no cover - advisory column only
        return None
