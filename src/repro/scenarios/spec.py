"""The declarative scenario vocabulary.

Everything an adversarial environment can throw at a ROAR cluster is spelled
out as data: workload shape, object popularity, fleet heterogeneity, failure
and churn schedules, and the control policies allowed to fight back.  Specs
are frozen dataclasses so a scenario grid can be generated with
:func:`dataclasses.replace` and compared/hashed safely; every random choice
the runner makes derives from ``Scenario.seed``, so a scenario *is* its
outcome.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, replace

__all__ = [
    "WorkloadSpec",
    "UpdateSpec",
    "ChurnSpec",
    "EventSpec",
    "ControlSpec",
    "AdmissionSpec",
    "Scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "WORKLOAD_KINDS",
    "EVENT_ACTIONS",
    "FLEETS",
]

WORKLOAD_KINDS = ("poisson", "uniform", "diurnal", "flash-crowd", "ramp", "replay")

EVENT_ACTIONS = (
    "fail",
    "fail-rack",
    "rebuild",
    "recover",
    "add-server",
    "remove-server",
    "rebalance",
    "set-pq",
    "repartition",
)

FLEETS = ("hen", "uniform", "ec2", "custom")


@dataclass(frozen=True)
class WorkloadSpec:
    """Query arrival process over ``[0, duration]``.

    ``rate`` is the base arrival rate (queries/s).  Kind-specific shape
    knobs use fractions of the duration so one spec scales across horizons:

    * ``flash-crowd``: a ``surge_factor``x plateau over
      ``[surge_start_frac, surge_start_frac + surge_duration_frac]`` with
      exponential decay (``decay_frac``);
    * ``diurnal``: one sinusoidal period with the requested
      ``peak_to_trough`` ratio, starting at the trough;
    * ``ramp``: linear climb from ``rate`` to ``end_rate``;
    * ``replay``: verbatim ``trace`` times (rate/duration ignored).

    Examples::

        >>> WorkloadSpec(kind="flash-crowd", rate=100.0, duration=60.0).horizon
        60.0
        >>> WorkloadSpec(kind="replay", trace=(0.0, 0.5, 2.0)).horizon
        2.0
        >>> WorkloadSpec(kind="warp")
        Traceback (most recent call last):
            ...
        ValueError: unknown workload kind 'warp'; pick one of ('poisson', \
'uniform', 'diurnal', 'flash-crowd', 'ramp', 'replay')
    """

    kind: str = "poisson"
    rate: float = 50.0
    duration: float = 60.0
    surge_factor: float = 4.0
    surge_start_frac: float = 0.25
    surge_duration_frac: float = 0.30
    decay_frac: float = 0.05
    peak_to_trough: float = 3.0
    end_rate: float | None = None
    trace: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; pick one of {WORKLOAD_KINDS}"
            )
        if self.kind == "replay":
            if not self.trace:
                raise ValueError("replay workloads need a non-empty trace")
        else:
            if self.rate <= 0:
                raise ValueError("rate must be positive")
            if self.duration <= 0:
                raise ValueError("duration must be positive")

    @property
    def horizon(self) -> float:
        if self.kind == "replay":
            return max(self.trace) if self.trace else 0.0
        return self.duration


@dataclass(frozen=True)
class UpdateSpec:
    """Object-update stream with Zipf popularity skew.

    ``rate`` updates/s land on ``hotspots`` ring positions whose selection
    probability follows a Zipf(``zipf_s``) rank distribution (``zipf_s=0``
    degenerates to uniform across the hotspots); each update jitters
    ``jitter`` around its hotspot so a hot *region*, not a single point,
    heats up.  This is the write-skew half of "object popularity": the
    replica holders of hot arcs pay the update cost and show up as load
    imbalance for the balancer / repartition policies to handle.

    Updates land with **exact event-time semantics**: the runner compiles
    each one to an action at the precise query index where its timestamp
    falls, so an update is visible to the very next query on either engine.

    Example -- a hot write stream with mild skew::

        >>> spec = UpdateSpec(rate=50.0, zipf_s=1.2, hotspots=8)
        >>> spec.hotspots
        8
        >>> UpdateSpec(rate=-1.0)
        Traceback (most recent call last):
            ...
        ValueError: update rate must be positive
    """

    rate: float = 20.0
    zipf_s: float = 1.1
    hotspots: int = 16
    jitter: float = 0.01
    #: **Deprecated.**  Knob of the retired segment-batched runner, where
    #: updates applied at batch boundaries up to this many seconds late.
    #: The exact-time action queue replaced it: every update now lands at
    #: the precise query index where its timestamp falls (see
    #: :class:`repro.sim.fastpath.Action` and ``docs/architecture.md``).
    #: Passing a value warns and has no effect; the field will be removed.
    batch_interval: float | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("update rate must be positive")
        if self.hotspots < 1:
            raise ValueError("need at least one hotspot")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if self.batch_interval is not None:
            warnings.warn(
                "UpdateSpec.batch_interval is deprecated and ignored: "
                "updates land at exact event times through the engine's "
                "action queue (docs/architecture.md); drop the argument",
                DeprecationWarning,
                stacklevel=2,
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Periodic membership churn: every ``interval`` seconds starting at
    ``start``, add ``add`` servers (of ``model``) and drain ``remove``."""

    interval: float = 10.0
    add: int = 1
    remove: int = 1
    start: float = 0.0
    stop: float | None = None
    model: str = "dell-1950"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("churn interval must be positive")
        if self.add < 0 or self.remove < 0:
            raise ValueError("add/remove must be non-negative")


@dataclass(frozen=True)
class EventSpec:
    """One timed action against the deployment.

    Actions (``EVENT_ACTIONS``): ``fail`` (count servers, or ``target``),
    ``fail-rack`` (a contiguous block of machine indices -- the correlated
    failure), ``rebuild`` (declare still-dead servers permanently failed and
    redistribute their ranges), ``recover``, ``add-server`` /
    ``remove-server``, ``rebalance`` (membership moves the coolest node to
    the hottest spot), ``set-pq``, and ``repartition`` (walk the stored p
    online via the reconfigurator; requires object stores).

    ``at`` is honoured exactly: the event fires between the last query
    arriving at or before ``at`` and the first one after it, on both the
    batched and the reference engine.
    """

    at: float
    action: str
    target: str | None = None
    count: int = 1
    value: int | None = None
    model: str = "dell-1950"

    def __post_init__(self) -> None:
        if self.action not in EVENT_ACTIONS:
            raise ValueError(
                f"unknown event action {self.action!r}; pick one of {EVENT_ACTIONS}"
            )
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.action in ("set-pq", "repartition") and self.value is None:
            raise ValueError(f"{self.action} needs a value")


@dataclass(frozen=True)
class ControlSpec:
    """Closed-loop policies allowed to react during the scenario."""

    policies: tuple[str, ...] = ("elasticity",)
    slo_p99: float = 1.0
    interval: float = 5.0
    metrics_window: float = 20.0
    min_servers: int | None = None
    max_servers: int | None = None
    p_min: int | None = None
    p_max: int | None = None
    grow_seconds: float = 20.0
    drop_seconds: float = 4.0
    growth_model: str = "dell-1950"

    def __post_init__(self) -> None:
        known = {"elasticity", "repartition"}
        unknown = [p for p in self.policies if p not in known]
        if unknown or not self.policies:
            raise ValueError(
                f"unknown policies {unknown!r}; pick from {sorted(known)}"
            )
        if self.slo_p99 <= 0 or self.interval <= 0:
            raise ValueError("slo_p99 and interval must be positive")


@dataclass(frozen=True)
class AdmissionSpec:
    """Per-frontend admission control (load shedding / pacing).

    ``policy`` names a registered admission policy, optionally with a
    ``:key=value,...`` parameter suffix (see :mod:`repro.admission`).
    The default ``"none"`` is accept-all and leaves every run
    bit-identical to an admission-free one.  The remaining fields tune
    whichever policy runs, so ``repro matrix --admission`` can swap the
    policy name while holding the comparison knobs fixed; ``None`` fields
    defer to the policy's own defaults.

    ``slo`` is the target delay (seconds) -- it sizes the queue cap
    (``cap_multiple * slo`` seconds of backlog) and defines goodput
    (completed queries meeting the SLO).  ``tick`` is the controller's
    adaptation interval, enforced at exact query indices through the
    engine's action queue.
    """

    policy: str = "none"
    slo: float = 1.0
    window: float = 10.0
    cap_multiple: float = 4.0
    tick: float = 1.0
    #: AIMD knobs (ignored by rateless policies).
    floor: float | None = None
    capacity: float | None = None
    rate: float | None = None
    increase: float | None = None
    decrease: float | None = None
    burst: float | None = None
    #: delay_gated knob.
    slo_multiple: float | None = None

    def __post_init__(self) -> None:
        from ..admission.registry import is_known_policy

        if not is_known_policy(self.policy):
            raise ValueError(
                f"unknown admission policy {self.policy!r}; see "
                "repro.admission.policy_names()"
            )
        if self.slo <= 0 or self.window <= 0 or self.tick <= 0:
            raise ValueError("slo, window, and tick must be positive")
        if self.cap_multiple <= 0:
            raise ValueError("cap_multiple must be positive")


@dataclass(frozen=True)
class Scenario:
    """One fully specified environment for a ROAR deployment.

    Every random choice the runner makes derives from ``seed``, so a
    scenario *is* its outcome; :meth:`with_` produces grid variants.

    Examples::

        >>> s = Scenario(name="steady", n_servers=8, p=4)
        >>> s.with_(n_servers=16).n_servers
        16
        >>> s.needs_stores        # repartition policies need object stores
        False
        >>> big = s.with_(events=(EventSpec(at=5.0, action="repartition",
        ...                                 value=8),))
        >>> big.needs_stores
        True
        >>> Scenario(name="bad", n_servers=4, p=9)
        Traceback (most recent call last):
            ...
        ValueError: need 1 <= p <= n_servers
    """

    name: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    n_servers: int = 20
    fleet: str = "hen"
    #: explicit speeds (objects/s) for fleet="custom" heterogeneity studies.
    speeds: tuple[float, ...] | None = None
    p: int = 4
    pq: int | None = None
    n_rings: int = 1
    dataset_size: float = 2_000_000.0
    seed: int = 1
    events: tuple[EventSpec, ...] = ()
    churn: ChurnSpec | None = None
    updates: UpdateSpec | None = None
    control: ControlSpec | None = None
    #: keep real object replicas (needed by repartition; costs memory).
    store_objects: bool | None = None
    n_objects_stored: int = 200
    #: scheduling kernel for the batched engine (a registry name such as
    #: "exact_numpy", "compiled", "approx_topk:stride=8"); None uses the
    #: engine default (the bit-exact oracle).  Ignored by the reference
    #: engine, which schedules through the original heap.
    kernel: str | None = None
    #: admission control at the engine's arrival seam; None (or
    #: policy="none") accepts every query, bit-identical to the
    #: pre-admission engine.
    admission: AdmissionSpec | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.fleet not in FLEETS:
            raise ValueError(f"unknown fleet {self.fleet!r}; pick one of {FLEETS}")
        if self.fleet == "custom" and not self.speeds:
            raise ValueError("fleet='custom' needs explicit speeds")
        if self.speeds is not None and len(self.speeds) != self.n_servers:
            raise ValueError("speeds must have length n_servers")
        if self.n_servers < 2:
            raise ValueError("need at least 2 servers")
        if not 1 <= self.p <= self.n_servers:
            raise ValueError("need 1 <= p <= n_servers")
        if self.pq is not None and self.pq < self.p:
            raise ValueError("pq must be >= p")
        if self.kernel is not None:
            from ..kernels.registry import is_known_kernel

            if not is_known_kernel(self.kernel):
                raise ValueError(
                    f"unknown scheduling kernel {self.kernel!r}; see "
                    "repro.kernels.kernel_names()"
                )

    @property
    def needs_stores(self) -> bool:
        """Object stores are required by online repartitioning."""
        if self.store_objects is not None:
            return self.store_objects
        if any(e.action == "repartition" for e in self.events):
            return True
        return self.control is not None and "repartition" in self.control.policies

    def with_(self, **overrides) -> "Scenario":
        """A copy with field overrides (grid-sweep convenience)."""
        return replace(self, **overrides)


# -- serialisation ------------------------------------------------------------
# Scenarios travel inside recordings (repro record / replay), so they need
# a JSON-stable round trip.  The only polymorphic field is ``workload``
# (WorkloadSpec or a repro.traces.TraceSpec); a ``__type__`` tag tells the
# two apart on the way back in.


def scenario_to_dict(scenario: Scenario) -> dict:
    """A JSON-serialisable dict that :func:`scenario_from_dict` inverts.

    Example::

        >>> s = Scenario(name="steady", n_servers=8, p=4,
        ...              events=(EventSpec(at=5.0, action="rebalance"),))
        >>> scenario_from_dict(scenario_to_dict(s)) == s
        True
    """
    data = asdict(scenario)
    data["workload"]["__type__"] = (
        "workload" if isinstance(scenario.workload, WorkloadSpec) else "trace"
    )
    return data


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from :func:`scenario_to_dict` output."""
    d = dict(data)
    wd = dict(d.pop("workload"))
    wtype = wd.pop("__type__", "workload")
    if wtype == "trace":
        from ..traces.spec import TraceSpec

        workload = TraceSpec(**wd)
    elif wtype == "workload":
        if wd.get("trace") is not None:
            wd["trace"] = tuple(wd["trace"])
        workload = WorkloadSpec(**wd)
    else:
        raise ValueError(f"unknown workload type tag {wtype!r}")
    d["workload"] = workload
    d["events"] = tuple(EventSpec(**e) for e in d.get("events") or ())
    for key, cls in (
        ("churn", ChurnSpec),
        ("updates", UpdateSpec),
        ("control", ControlSpec),
        ("admission", AdmissionSpec),
    ):
        raw = d.get(key)
        if raw is not None:
            raw = dict(raw)
            if key == "control":
                raw["policies"] = tuple(raw.get("policies") or ())
            d[key] = cls(**raw)
    if d.get("speeds") is not None:
        d["speeds"] = tuple(d["speeds"])
    return Scenario(**d)
