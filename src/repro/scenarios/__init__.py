"""Declarative scenario matrix over the ROAR deployment and control plane.

A :class:`Scenario` is a single declarative description of an environment --
fleet composition, workload shape, object popularity, failures, churn, and
(optionally) the closed-loop control policies -- that the runner executes
uniformly over the deployment, control, and analysis layers, on either the
batched fast path or the per-query reference path.  The matrix module sweeps
grids of scenarios and renders comparable metric tables (``repro matrix``).
"""

from .spec import (
    AdmissionSpec,
    ChurnSpec,
    ControlSpec,
    EventSpec,
    Scenario,
    UpdateSpec,
    WorkloadSpec,
)
from .runner import (
    ScenarioExecution,
    ScenarioResult,
    build_deployment,
    execute_scenario,
    run_scenario_spec,
)
from .matrix import (
    MatrixResult,
    builtin_scenarios,
    render_table,
    run_matrix,
    trace_scenario,
)
from .spec import scenario_from_dict, scenario_to_dict

__all__ = [
    "AdmissionSpec",
    "ChurnSpec",
    "ControlSpec",
    "EventSpec",
    "MatrixResult",
    "Scenario",
    "ScenarioExecution",
    "ScenarioResult",
    "UpdateSpec",
    "WorkloadSpec",
    "build_deployment",
    "builtin_scenarios",
    "execute_scenario",
    "render_table",
    "run_matrix",
    "run_scenario_spec",
    "scenario_from_dict",
    "scenario_to_dict",
    "trace_scenario",
]
