"""The benchmark trajectory: standard sweeps, machine-readable results, CI gate.

``repro bench`` runs the repo's two standard performance sweeps -- the
200-server/100k-query run and the 1k-server run -- on both the batched
engine (full trace) and the per-query reference path (a timed subset,
extrapolated to us/query), and emits a ``BENCH_<rev>.json`` snapshot:
us/query per engine, speedup vs reference, and the chunked engine's
chunk-size histogram.  Committing one snapshot per optimisation PR gives
the repo a *trajectory* -- the numbers that justify each engine change stay
reproducible instead of living in PR descriptions.

Each sweep also carries a **per-kernel matrix dimension**: every
registered scheduling kernel (see :mod:`repro.kernels`) that can run in
this environment is timed over the full trace, reporting whole-engine
us/query, **in-kernel** us/query (the ``commit_batch`` wall: sweep +
commit -- bench traces have no actions, so every kernel takes the bulk
seam, python-looped or C-fused), the **engine residual**
(``us_per_query - sweep_us_per_query``: the numpy flush and span
bookkeeping outside the kernel), its in-kernel speedup over the
``exact_numpy`` oracle (the column that shows what the C fusion bought:
the oracle's in-kernel wall is a python sweep+commit loop, the compiled
kernel's is one C call per chunk), its end-to-end speedup over the
oracle run, and whether its results matched the oracle bit for bit.
Kernels that cannot run (e.g. ``compiled`` without a C toolchain) are
recorded as unavailable with the reason -- the CI artifact shows what
the runner could and could not build, without failing the gate over it.

``repro bench --check benchmarks/baseline.json`` is the CI gate.  Absolute
us/query is machine-dependent (shared CI runners differ wildly), so the
gate compares **speedup-vs-reference ratios**, which divide the machine
out: both engines run in the same process on the same host, so their ratio
is stable across hardware.  The gate fails when

* a sweep's speedup falls below the hard floor (5x, the ISSUE-2 acceptance
  bar), or
* a sweep's speedup regresses more than ``--max-regression`` (default 30%)
  relative to the committed baseline, or
* the batched engine's sampled results stop matching the reference path
  (a speedup with wrong answers is not a speedup).

Refresh the baseline after a *justified* performance change with::

    repro bench --profile full --out benchmarks/baseline.json
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "PROFILES",
    "OVERLOAD_PROFILES",
    "SweepSpec",
    "run_sweep",
    "overload_snapshot",
    "collect",
    "check_against_baseline",
    "baseline_warnings",
    "render_report",
]

#: Hard floor on batched-vs-reference speedup (the ISSUE-2 acceptance bar,
#: enforced by CI on every sweep).
MIN_SPEEDUP = 5.0

#: Default tolerated relative speedup regression vs the committed baseline.
MAX_REGRESSION = 0.30


@dataclass(frozen=True)
class SweepSpec:
    """One standard sweep configuration.

    With ``trace`` set, the arrival stream comes from that file through
    the dataloader registry (:mod:`repro.traces`) instead of the Poisson
    sampler -- ``queries``/``rate`` are then ignored and reported from
    the trace itself.
    """

    name: str
    servers: int
    queries: int
    rate: float
    pq: int
    #: reference-path queries actually executed (us/query extrapolates);
    #: the full trace through the reference path would take minutes.
    ref_queries: int
    dataset: float = 5e6
    seed: int = 2
    trace: str | None = None
    trace_loader: str | None = None


#: The standard sweeps.  ``full`` is the committed-trajectory profile;
#: ``quick`` is for development iteration; ``smoke`` keeps the unit tests
#: and CLI coverage fast.
PROFILES: dict[str, tuple[SweepSpec, ...]] = {
    "full": (
        SweepSpec("200-server", 200, 100_000, 300.0, 5, 1500),
        SweepSpec("1k-server", 1000, 50_000, 1500.0, 5, 300),
    ),
    "quick": (
        SweepSpec("200-server", 200, 30_000, 300.0, 5, 800),
        SweepSpec("1k-server", 1000, 10_000, 1500.0, 5, 200),
    ),
    "smoke": (
        SweepSpec("200-server", 16, 500, 40.0, 4, 120),
        SweepSpec("1k-server", 24, 500, 60.0, 4, 120),
    ),
}


#: overload-battery shape per profile: (n_servers, duration) for the
#: sustained-overload scenario swept over every admission policy.
OVERLOAD_PROFILES: dict[str, tuple[int, float]] = {
    "full": (16, 30.0),
    "quick": (16, 20.0),
    "smoke": (10, 10.0),
}


def overload_snapshot(profile: str = "full") -> dict:
    """Goodput/shed-rate/p99 per admission policy under 2x overload.

    Runs the ``sustained-overload`` builtin scenario (Poisson at twice
    pool capacity) once per admission policy and records the quantities
    the overload battery pins: goodput (completed-within-SLO per second),
    shed rate, and p99 delay.  These are simulated-time quantities --
    deterministic, machine-independent -- so unlike the us/query sweeps
    they are directly comparable across snapshots; the baseline gate
    still never compares them (it iterates the baseline's ``sweeps``
    only), so the rows ride along gate-neutral.
    """
    import dataclasses

    from .scenarios import builtin_scenarios, run_scenario_spec

    n_servers, duration = OVERLOAD_PROFILES[profile]
    scens = builtin_scenarios(
        n_servers=n_servers, duration=duration, p=4, seed=2
    )
    base = next(s for s in scens if s.name == "sustained-overload")
    out: dict = {}
    for policy in ("none", "aimd", "delay_gated"):
        scenario = dataclasses.replace(
            base, admission=dataclasses.replace(base.admission, policy=policy)
        )
        r = run_scenario_spec(scenario, engine="batched")
        out[policy] = {
            "offered": r.offered,
            "completed": r.completed,
            "shed": r.shed,
            "shed_rate": round(r.shed_rate, 4),
            "goodput": round(r.goodput, 3),
            "p99_delay": round(r.p99_delay, 6),
        }
    return out


def _chunk_histogram(chunk_sizes) -> dict[str, int]:
    """Power-of-two buckets: {"<=64": n, "<=128": n, ...}."""
    hist: dict[str, int] = {}
    for size in chunk_sizes:
        bucket = 64
        while size > bucket:
            bucket *= 2
        key = f"<={bucket}"
        hist[key] = hist.get(key, 0) + 1
    return dict(sorted(hist.items(), key=lambda kv: int(kv[0][2:])))


def run_sweep(
    spec: SweepSpec,
    kernels: Sequence[str] | None = None,
    archive_dir: str | None = None,
) -> dict:
    """Run one sweep; returns the JSON-ready result dict.

    *kernels* names the scheduling kernels to time on top of the default
    batched run (default: every registered kernel available in this
    environment).  Each kernel row reports whole-engine us/query plus the
    sweep-only us/query (the deployment's accumulated scheduling
    wall-clock), and whether its per-query delays matched the exact run
    bit for bit -- the per-kernel matrix dimension the CI artifact carries.
    *archive_dir* writes the batched run's telemetry columns as a
    compressed archive (``<sweep>.npz``).
    """
    from .cluster import Deployment, DeploymentConfig, hen_testbed
    from .kernels import DEFAULT_KERNEL, get_kernel, kernel_names
    from .kernels.base import KernelUnavailableError
    from .kernels.registry import canonical_spec
    from .sim import batched_poisson_times

    # validate + canonicalise the requested kernels (resolve aliases, catch
    # typos) BEFORE the sweeps run: an unknown name must fail in
    # milliseconds, not after minutes of benchmarking
    requested = [
        canonical_spec(name)
        for name in (kernels if kernels is not None else kernel_names())
    ]

    def build():
        return Deployment(
            DeploymentConfig(
                models=hen_testbed(spec.servers),
                p=spec.pq,
                dataset_size=spec.dataset,
                seed=spec.seed,
                charge_scheduling=False,
            )
        )

    if spec.trace is not None:
        from .traces import load_trace

        arrivals = load_trace(spec.trace, loader=spec.trace_loader).arrivals.tolist()
    else:
        arrivals = batched_poisson_times(spec.rate, spec.queries, seed=4).tolist()
    n_queries = len(arrivals)

    fast = build()
    t0 = time.perf_counter()
    result = fast.run_queries_fast(arrivals, spec.pq)
    fast_wall = time.perf_counter() - t0
    fast_us = 1e6 * fast_wall / n_queries
    exact_delays = fast.log.delays()
    exact_sweep_us = 1e6 * fast.scheduling_wallclock / n_queries

    # phase attribution: a separate profiled run, so the headline us/query
    # above is never perturbed.  Results are bit-identical by contract
    # (checked cheaply here), and the per-phase us/query lands in the
    # snapshot so --check can attribute speedup drift to a phase.
    prof_dep = build()
    prof_result = prof_dep.run_queries_fast(arrivals, spec.pq, profile=True)
    if prof_dep.log.delays() != exact_delays:  # pragma: no cover
        raise RuntimeError(
            f"{spec.name}: profiled run diverged from the unprofiled run"
        )
    phases = prof_result.profile.phase_us_per_query(n_queries)
    profile_coverage = round(prof_result.profile.coverage(), 4)

    if archive_dir is not None:
        import os

        from .obs.manifest import build_manifest
        from .telemetry.archive import write_archive

        os.makedirs(archive_dir, exist_ok=True)
        write_archive(
            os.path.join(archive_dir, f"{spec.name}.npz"),
            fast,
            meta={
                "sweep": spec.name,
                "servers": spec.servers,
                "queries": n_queries,
                "pq": spec.pq,
                "seed": spec.seed,
                "manifest": build_manifest(
                    kernel="exact_numpy",
                    seeds={"deployment": spec.seed, "arrivals": 4},
                    config={
                        "sweep": spec.name,
                        "servers": spec.servers,
                        "queries": n_queries,
                        "pq": spec.pq,
                    },
                    profile=prof_result.profile,
                ),
            },
        )

    ref = build()
    n_ref = min(spec.ref_queries, n_queries)
    t0 = time.perf_counter()
    ref.run_queries(arrivals[:n_ref], spec.pq)
    ref_wall = time.perf_counter() - t0
    ref_us = 1e6 * ref_wall / n_ref

    # the speedup is meaningless unless the engines agree: compare the
    # reference subset's delays against the batched run, bit for bit
    identical = ref.log.delays() == exact_delays[:n_ref]

    # per-kernel dimension: the default run above *is* the exact_numpy row.
    # "sweep_us_per_query" is the in-kernel wall (scheduling wallclock):
    # bench traces are action-free, so every kernel runs the bulk seam and
    # this covers sweep + commit for all of them -- python-looped for
    # unfused kernels, one C call per chunk for fused ones (that contrast
    # is the fusion win).  "commit_us_per_query" is the engine residual
    # (us_per_query - sweep_us_per_query): numpy flush + span bookkeeping.
    kernel_rows: dict[str, dict] = {
        DEFAULT_KERNEL: {
            "available": True,
            "fused_commit": False,
            "us_per_query": round(fast_us, 3),
            "sweep_us_per_query": round(exact_sweep_us, 3),
            "commit_us_per_query": round(fast_us - exact_sweep_us, 3),
            "sweep_speedup_vs_exact": 1.0,
            "speedup_vs_exact": 1.0,
            "identical_to_exact": True,
        }
    }
    for name in requested:
        if name in kernel_rows:
            continue
        try:
            kernel = get_kernel(name)
        except KernelUnavailableError as exc:
            kernel_rows[name] = {"available": False, "reason": str(exc)}
            continue
        dep = build()
        t0 = time.perf_counter()
        dep.run_queries_fast(arrivals, spec.pq, kernel=kernel)
        wall = time.perf_counter() - t0
        us = 1e6 * wall / n_queries
        sweep_us = 1e6 * dep.scheduling_wallclock / n_queries
        kernel_rows[name] = {
            "available": True,
            "fused_commit": bool(getattr(kernel, "fused_commit", False)),
            "us_per_query": round(us, 3),
            "sweep_us_per_query": round(sweep_us, 3),
            "commit_us_per_query": round(us - sweep_us, 3),
            "sweep_speedup_vs_exact": round(exact_sweep_us / sweep_us, 2),
            "speedup_vs_exact": round(fast_us / us, 2),
            "identical_to_exact": dep.log.delays() == exact_delays,
        }

    # latency distribution columns (seconds, simulated latency only --
    # charge_scheduling=False above), via the bit-exact array percentile
    from .telemetry.columns import array_percentile

    lat = fast.log.column("finish") - fast.log.column("arrival")
    out: dict = {} if spec.trace is None else {"trace": spec.trace}
    out.update({
        "servers": spec.servers,
        "queries": n_queries,
        "rate": spec.rate,
        "pq": spec.pq,
        "ref_queries": n_ref,
        "fast_us_per_query": round(fast_us, 3),
        "ref_us_per_query": round(ref_us, 3),
        "speedup_vs_reference": round(ref_us / fast_us, 2),
        "p50_delay": round(array_percentile(lat, 50), 6),
        "p95_delay": round(array_percentile(lat, 95), 6),
        "p99_delay": round(array_percentile(lat, 99), 6),
        "identical_sample": identical,
        "completed": result.completed,
        "delegated": result.delegated,
        "chunks": len(result.chunk_sizes),
        "chunk_size_histogram": _chunk_histogram(result.chunk_sizes),
        #: per-phase us/query from the separate profiled run (the engine's
        #: wall split by phase; see repro.obs.profiler) + how much of that
        #: run's wall the phases explain.
        "phases": phases,
        "profile_coverage": profile_coverage,
        "kernels": kernel_rows,
    })
    return out


def _revision() -> str:
    from .obs.manifest import git_revision

    return git_revision()


def collect(
    profile: str = "full",
    progress=None,
    kernels: Sequence[str] | None = None,
    archive_dir: str | None = None,
    trace: str | None = None,
    trace_loader: str | None = None,
) -> dict:
    """Run every sweep of *profile* and assemble the snapshot dict.

    *trace* adds one real-trace sweep replaying that file (through the
    :mod:`repro.traces` registry) on a small fleet.  The baseline gate
    never compares it -- :func:`check_against_baseline` iterates the
    *baseline*'s sweeps, so an extra trace row rides along gate-neutral.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; pick one of {sorted(PROFILES)}"
        )
    specs = list(PROFILES[profile])
    if trace is not None:
        specs.append(SweepSpec(
            "trace", servers=16, queries=0, rate=0.0, pq=4,
            ref_queries=120, trace=trace, trace_loader=trace_loader,
        ))
    sweeps = {}
    for spec in specs:
        sweeps[spec.name] = run_sweep(spec, kernels=kernels, archive_dir=archive_dir)
        if progress is not None:
            progress(spec.name, sweeps[spec.name])
    from .obs.manifest import build_manifest

    return {
        "schema": 1,
        "revision": _revision(),
        "profile": profile,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": platform.node(),
        #: full provenance (git rev, host, machine, python) -- makes
        #: cross-machine BENCH trajectories unambiguous; baseline_warnings
        #: reads it to flag host mismatches (warn, never gate).
        "manifest": build_manifest(extra={"bench_profile": profile}),
        "sweeps": sweeps,
        #: admission-policy comparison under sustained 2x overload --
        #: deterministic simulated-time rows, never gated (the baseline
        #: gate iterates "sweeps" only).
        "overload": overload_snapshot(profile),
    }


def _attribute_drift(cur: dict, base: dict) -> str:
    """Name the phase whose share of the engine wall grew the most.

    Both sweeps must carry the ``phases`` dict (per-phase us/query from
    the profiled run); phase shares are machine-independent in the same
    way speedup ratios are -- every phase ran on the same host in the
    same process -- so comparing them across snapshots is meaningful
    where absolute us/query is not.
    """
    cur_ph, base_ph = cur.get("phases"), base.get("phases")
    if not cur_ph or not base_ph:
        return ""
    cur_total = sum(cur_ph.values())
    base_total = sum(base_ph.values())
    if cur_total <= 0 or base_total <= 0:
        return ""
    deltas = {
        name: cur_ph.get(name, 0.0) / cur_total - base_ph.get(name, 0.0) / base_total
        for name in set(cur_ph) | set(base_ph)
    }
    worst = max(deltas, key=deltas.get)
    if deltas[worst] <= 0:
        return ""
    return (
        f" [phase attribution: {worst} grew from "
        f"{100 * base_ph.get(worst, 0.0) / base_total:.0f}% to "
        f"{100 * cur_ph.get(worst, 0.0) / cur_total:.0f}% of engine wall]"
    )


def check_against_baseline(
    current: dict,
    baseline: dict,
    max_regression: float = MAX_REGRESSION,
    min_speedup: float = MIN_SPEEDUP,
) -> list[str]:
    """Gate *current* against *baseline*; returns the list of violations.

    Only machine-independent ratios gate: us/query numbers are recorded
    for the trajectory but never compared across runs.  Speedup
    violations carry a phase attribution when both snapshots have the
    per-phase profile columns, so a regression names its suspect phase.
    """
    problems = []
    for name, base in baseline.get("sweeps", {}).items():
        cur = current.get("sweeps", {}).get(name)
        if cur is None:
            problems.append(f"{name}: sweep missing from current run")
            continue
        if not cur.get("identical_sample", False):
            problems.append(
                f"{name}: batched results diverged from the reference sample"
            )
        speedup = cur.get("speedup_vs_reference", 0.0)
        drift = _attribute_drift(cur, base)
        if speedup < min_speedup:
            problems.append(
                f"{name}: speedup {speedup:.2f}x below the "
                f"{min_speedup:g}x floor{drift}"
            )
        # a "30% regression" means losing 30% of the baseline's speedup
        floor = base.get("speedup_vs_reference", 0.0) * (1.0 - max_regression)
        if speedup < floor:
            problems.append(
                f"{name}: speedup {speedup:.2f}x regressed more than "
                f"{100 * max_regression:.0f}% vs baseline "
                f"{base['speedup_vs_reference']:.2f}x (floor {floor:.2f}x){drift}"
            )
    return problems


def baseline_warnings(current: dict, baseline: dict) -> list[str]:
    """Non-gating advisories when comparing *current* against *baseline*.

    A host/machine mismatch does not fail the gate (only ratios gate, and
    ratios divide the machine out) but it *does* make the absolute
    trajectory ambiguous -- so say so.
    """
    warnings = []
    cur_m = current.get("manifest", {})
    base_m = baseline.get("manifest", {})
    cur_host = cur_m.get("host", current.get("host"))
    base_host = base_m.get("host", baseline.get("host"))
    if cur_host and base_host and cur_host != base_host:
        warnings.append(
            f"host mismatch: current ran on {cur_host!r}, baseline on "
            f"{base_host!r} -- absolute us/query is not comparable "
            "(ratios still gate)"
        )
    cur_mach = cur_m.get("machine", current.get("machine"))
    base_mach = base_m.get("machine", baseline.get("machine"))
    if cur_mach and base_mach and cur_mach != base_mach:
        warnings.append(
            f"machine mismatch: {cur_mach!r} vs baseline {base_mach!r}"
        )
    return warnings


def render_report(snapshot: dict, baseline: Optional[dict] = None) -> str:
    lines = [
        f"bench @ {snapshot['revision']} (profile={snapshot['profile']}, "
        f"py{snapshot['python']}/{snapshot['machine']})",
        f"{'sweep':12s} {'servers':>7s} {'queries':>8s} {'fast us/q':>10s} "
        f"{'ref us/q':>10s} {'speedup':>8s} {'chunks':>7s} {'ok':>3s}",
    ]
    for name, s in snapshot["sweeps"].items():
        base = ""
        if baseline is not None:
            b = baseline.get("sweeps", {}).get(name)
            if b:
                base = f"  (baseline {b['speedup_vs_reference']:.1f}x)"
        lines.append(
            f"{name:12s} {s['servers']:>7d} {s['queries']:>8d} "
            f"{s['fast_us_per_query']:>10.1f} {s['ref_us_per_query']:>10.1f} "
            f"{s['speedup_vs_reference']:>7.1f}x {s['chunks']:>7d} "
            f"{'yes' if s['identical_sample'] else 'NO':>3s}{base}"
        )
        phases = s.get("phases")
        if phases:
            top = sorted(phases.items(), key=lambda kv: -kv[1])[:4]
            lines.append(
                "  phases "
                + "  ".join(f"{k} {v:.2f}" for k, v in top)
                + f" us/q (coverage {s.get('profile_coverage', 0.0):.0%})"
            )
        for kname, k in s.get("kernels", {}).items():
            if not k.get("available", False):
                lines.append(
                    f"  kernel {kname:12s} unavailable "
                    f"({k.get('reason', 'unknown')})"
                )
                continue
            fused = "fused" if k.get("fused_commit") else "     "
            commit = k.get("commit_us_per_query")
            commit_txt = f"commit {commit:>5.1f} us/q  " if commit is not None else ""
            vs_exact = k.get("speedup_vs_exact")
            vs_txt = f"{vs_exact:>5.2f}x e2e  " if vs_exact is not None else ""
            lines.append(
                f"  kernel {kname:12s} {fused} {k['us_per_query']:>7.1f} us/q  "
                f"kernel {k['sweep_us_per_query']:>5.1f} us/q  "
                f"{commit_txt}"
                f"{vs_txt}"
                f"{'exact' if k['identical_to_exact'] else 'diverges'}"
            )
    overload = snapshot.get("overload")
    if overload:
        lines.append(
            f"overload (sustained 2x): {'policy':12s} {'goodput':>8s} "
            f"{'shed%':>6s} {'p99 ms':>8s}"
        )
        for policy, row in overload.items():
            lines.append(
                f"{'':25s}{policy:12s} {row['goodput']:>8.1f} "
                f"{100.0 * row['shed_rate']:>6.1f} "
                f"{1000.0 * row['p99_delay']:>8.1f}"
            )
    return "\n".join(lines)


def main_bench(args) -> int:
    """Handler behind ``repro bench`` (see :mod:`repro.cli`)."""
    import sys

    def progress(name, s):
        print(
            f"[{name}] fast {s['fast_us_per_query']:.1f} us/q, "
            f"ref {s['ref_us_per_query']:.1f} us/q, "
            f"{s['speedup_vs_reference']:.1f}x",
            file=sys.stderr,
        )

    # read the baseline *before* the sweeps run, so a bad path fails in
    # milliseconds instead of after minutes of benchmarking
    baseline = None
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
    kernels = None
    raw_kernels = getattr(args, "kernels", None)
    if raw_kernels is not None:
        from .kernels.registry import canonical_spec

        try:
            kernels = [
                canonical_spec(k.strip())
                for k in raw_kernels.split(",")
                if k.strip()
            ]
        except ValueError as exc:
            print(f"bad --kernels: {exc}", file=sys.stderr)
            return 2
    snapshot = collect(
        args.profile,
        progress=progress,
        kernels=kernels,
        archive_dir=getattr(args, "archive_dir", None),
        trace=getattr(args, "trace", None),
        trace_loader=getattr(args, "trace_loader", None),
    )
    print(render_report(snapshot, baseline))

    out = args.out or f"BENCH_{snapshot['revision']}.json"
    with open(out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nsnapshot written to {out}")

    if baseline is not None:
        for warning in baseline_warnings(snapshot, baseline):
            print(f"warning: {warning}", file=sys.stderr)
        problems = check_against_baseline(
            snapshot, baseline, max_regression=args.max_regression
        )
        if problems:
            print("\nBENCH GATE FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        print(
            f"\nbench gate ok (speedups within {100 * args.max_regression:.0f}% "
            f"of baseline, all >= {MIN_SPEEDUP:g}x)"
        )
    return 0
