"""Observability: engine-phase profiling, decision audit logs, run manifests.

Three layers the rest of the toolkit plugs into:

* :mod:`repro.obs.profiler` -- a near-zero-overhead phase profiler for the
  batched engine (``perf_counter_ns`` accumulators around arrival draw,
  kernel sweep+commit, flush, listeners, actions) with per-chunk samples
  and a chrome://tracing export.  Off by default; ``profile=`` kwarg or
  ``REPRO_PROFILE=1`` turns it on.
* :mod:`repro.obs.audit` -- the columnar :class:`DecisionLog` every
  controller tick appends to: window inputs (p50/p95/p99/backlog), the
  decision, its magnitude, and the exact query index it landed at.
  Archived alongside run archives; ``repro explain`` reconstructs it.
* :mod:`repro.obs.manifest` -- provenance manifests (git revision, config
  hash, kernel, seeds, host) stamped into archives, recordings, and
  ``BENCH_<rev>.json`` snapshots.
"""

_EXPORTS = {
    "PhaseProfiler": "profiler",
    "resolve_profile": "profiler",
    "DecisionLog": "audit",
    "DecisionRecord": "audit",
    "decisions_from_archive": "audit",
    "explain_archive": "audit",
    "render_decisions": "audit",
    "build_manifest": "manifest",
    "config_hash": "manifest",
    "git_revision": "manifest",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    mod = importlib.import_module(f".{module}", __name__)
    value = getattr(mod, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
