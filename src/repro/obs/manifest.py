"""Run manifests: provenance meta stamped into every generated artifact.

A BENCH snapshot, a run archive, or a stimulus recording is only
interpretable if you know what produced it: which commit, which
configuration, which kernel, which seeds, on which host.  The manifest is
a small JSON-safe dict answering exactly that, written into archive meta
(``meta["manifest"]``), recording meta, and the top level of
``BENCH_<rev>.json`` files.  ``repro archive info --require-manifest``
gates on its presence; the bench ``--check`` gate *warns* (never fails)
when baseline and current came from different hosts, since absolute
numbers are machine-dependent.

Example::

    >>> m = build_manifest(kernel="python", seeds={"deployment": 1},
    ...                    config={"n_servers": 16, "p": 4})
    >>> sorted(m)
    ['config_hash', 'git_revision', 'host', 'kernel', 'machine', 'python', \
'schema', 'seeds']
    >>> m["schema"]
    1
    >>> m["config_hash"] == config_hash({"p": 4, "n_servers": 16})
    True
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from typing import Optional

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "config_hash", "git_revision"]

MANIFEST_SCHEMA = 1


def git_revision() -> str:
    """The short HEAD revision, or ``"unknown"`` outside a git checkout.

    Resolved against the package's own directory, not the process cwd,
    so provenance survives running ``repro`` from anywhere.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def config_hash(config) -> str:
    """Order-independent short digest of a configuration mapping."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def build_manifest(
    kernel: Optional[str] = None,
    seeds: Optional[dict] = None,
    config: Optional[dict] = None,
    profile=None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble the provenance dict.

    *profile* may be a :class:`~repro.obs.profiler.PhaseProfiler`, whose
    per-phase totals land under ``profile_ns``.  No timestamps: manifests
    of identical runs are identical, so they diff clean.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": platform.node(),
    }
    if kernel is not None:
        manifest["kernel"] = kernel
    if seeds is not None:
        manifest["seeds"] = dict(seeds)
    if config is not None:
        manifest["config_hash"] = config_hash(config)
    if profile is not None and getattr(profile, "totals_ns", None):
        manifest["profile_ns"] = dict(sorted(profile.totals_ns.items()))
    if extra:
        manifest.update(extra)
    return manifest
