"""Control-decision audit trail: why did the controller act?

Every controller tick appends one structured record per decision (or one
``hold`` record when the controller looked and did nothing) to a columnar
:class:`DecisionLog`: the window inputs the controller saw (p50/p95/p99,
backlog, utilisation, qps), the decision kind and magnitude, and the
**exact query index** the tick landed at in the arrival stream (from the
engine's action queue).  The columns ride inside the PR-6 run archives,
so ``repro explain <archive.npz>`` reconstructs the full decision
timeline offline -- and cross-checks each record's p99 against the
archived per-query delay columns.

All values are simulated-time quantities: the log is deterministic and
bit-identical across engines, unlike wall-clock columns.

Example -- a log round-trips through the archive layer::

    >>> import tempfile, os
    >>> from repro.telemetry.archive import write_archive_columns, read_archive
    >>> log = DecisionLog()
    >>> log.record_hold(5.0, 120, "slo-elasticity", "steady")
    >>> class _A:
    ...     time, controller, kind, detail, value = 9.0, "slo-elasticity", \
"grow", "p99 1.80 > slo", 2.0
    >>> log.record_action(_A(), query_index=250)
    >>> path = os.path.join(tempfile.mkdtemp(), "dec.npz")
    >>> write_archive_columns(path, log.columns(),
    ...                       meta={"decisions": log.meta(window=20.0)})
    >>> [r.kind for r in decisions_from_archive(read_archive(path))]
    ['hold', 'grow']
    >>> decisions_from_archive(read_archive(path))[1].query_index
    250
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DecisionLog",
    "DecisionRecord",
    "decisions_from_archive",
    "explain_archive",
    "render_decisions",
]

#: Snapshot fields copied into each record, in column order.
_SNAPSHOT_FIELDS = (
    ("dec_p50", "p50"),
    ("dec_p95", "p95"),
    ("dec_p99", "p99"),
    ("dec_backlog", "max_queue_depth"),
    ("dec_utilisation", "mean_utilisation"),
    ("dec_qps", "qps"),
)


@dataclass(frozen=True)
class DecisionRecord:
    """One controller tick outcome, reconstructed from archive columns."""

    time: float
    query_index: int
    controller: str
    kind: str  # grow / shrink / repartition / add-frontend / ... / hold
    detail: str
    value: Optional[float]
    p50: float
    p95: float
    p99: float
    backlog: float
    utilisation: float
    qps: float
    n_queries: int
    n_servers: int

    @property
    def is_hold(self) -> bool:
        return self.kind == "hold"


class DecisionLog:
    """Columnar accumulator of controller decisions.

    Numeric inputs live in ``GrowArray`` columns (``dec_*``); the string
    fields (controller name, decision kind, free-text detail) are interned
    into side tables carried in archive meta, keeping the columns pure
    numerics that the generic archive reader round-trips.
    """

    def __init__(self) -> None:
        from ..telemetry.columns import GrowArray

        self._time = GrowArray(dtype="float64")
        self._query_index = GrowArray(dtype="int64")
        self._controller = GrowArray(dtype="int64")
        self._kind = GrowArray(dtype="int64")
        self._value = GrowArray(dtype="float64")
        self._numeric = {
            col: GrowArray(dtype="float64") for col, _ in _SNAPSHOT_FIELDS
        }
        self._n_queries = GrowArray(dtype="int64")
        self._n_servers = GrowArray(dtype="int64")
        self._controllers: list[str] = []
        self._kinds: list[str] = []
        self._details: list[str] = []

    def __len__(self) -> int:
        return self._time.n

    @property
    def n(self) -> int:
        return self._time.n

    def _intern(self, table: list[str], value: str) -> int:
        try:
            return table.index(value)
        except ValueError:
            table.append(value)
            return len(table) - 1

    def _append(
        self,
        time: float,
        query_index: int,
        controller: str,
        kind: str,
        detail: str,
        value,
        snapshot,
    ) -> None:
        self._time.append(float(time))
        self._query_index.append(int(query_index))
        self._controller.append(self._intern(self._controllers, controller))
        self._kind.append(self._intern(self._kinds, kind))
        self._value.append(float("nan") if value is None else float(value))
        self._details.append(detail)
        for col, attr in _SNAPSHOT_FIELDS:
            raw = getattr(snapshot, attr, None) if snapshot is not None else None
            self._numeric[col].append(float("nan") if raw is None else float(raw))
        self._n_queries.append(
            int(getattr(snapshot, "n_queries", -1)) if snapshot is not None else -1
        )
        self._n_servers.append(
            int(getattr(snapshot, "n_servers", -1)) if snapshot is not None else -1
        )

    # -- recording ---------------------------------------------------------
    def record_action(self, action, query_index: int = -1, snapshot=None) -> None:
        """Append one fired ``ControlAction`` (duck-typed) + its inputs."""
        self._append(
            action.time,
            query_index,
            action.controller,
            action.kind,
            action.detail,
            getattr(action, "value", None),
            snapshot,
        )

    def record_hold(
        self,
        now: float,
        query_index: int,
        controller: str,
        reason: str,
        snapshot=None,
    ) -> None:
        """Append a no-op tick (reason: no-signal / cooldown / steady)."""
        self._append(now, query_index, controller, "hold", reason, None, snapshot)

    # -- persistence -------------------------------------------------------
    def columns(self) -> dict:
        """Archive-ready ``dec_*`` numpy columns (copies)."""
        cols = {
            "dec_time": self._time.copy(),
            "dec_query_index": self._query_index.copy(),
            "dec_controller": self._controller.copy(),
            "dec_kind": self._kind.copy(),
            "dec_value": self._value.copy(),
            "dec_n_queries": self._n_queries.copy(),
            "dec_n_servers": self._n_servers.copy(),
        }
        for col, _ in _SNAPSHOT_FIELDS:
            cols[col] = self._numeric[col].copy()
        return cols

    def meta(self, window: Optional[float] = None) -> dict:
        """The interning tables + metrics-window length, for archive meta."""
        out = {
            "schema": 1,
            "controllers": list(self._controllers),
            "kinds": list(self._kinds),
            "details": list(self._details),
        }
        if window is not None:
            out["window"] = float(window)
        return out

    def records(self, window_meta: Optional[dict] = None) -> list:
        """The log as :class:`DecisionRecord` objects (no archive trip)."""
        meta = window_meta or self.meta()
        return _build_records(self.columns(), meta)


def _build_records(columns: dict, meta: dict) -> list:
    controllers = meta.get("controllers", [])
    kinds = meta.get("kinds", [])
    details = meta.get("details", [])
    n = len(columns["dec_time"])
    out = []
    for i in range(n):
        value = float(columns["dec_value"][i])
        out.append(
            DecisionRecord(
                time=float(columns["dec_time"][i]),
                query_index=int(columns["dec_query_index"][i]),
                controller=controllers[int(columns["dec_controller"][i])],
                kind=kinds[int(columns["dec_kind"][i])],
                detail=details[i] if i < len(details) else "",
                value=None if math.isnan(value) else value,
                p50=float(columns["dec_p50"][i]),
                p95=float(columns["dec_p95"][i]),
                p99=float(columns["dec_p99"][i]),
                backlog=float(columns["dec_backlog"][i]),
                utilisation=float(columns["dec_utilisation"][i]),
                qps=float(columns["dec_qps"][i]),
                n_queries=int(columns["dec_n_queries"][i]),
                n_servers=int(columns["dec_n_servers"][i]),
            )
        )
    return out


def decisions_from_archive(archive) -> list:
    """Rebuild :class:`DecisionRecord` objects from a read archive.

    *archive* is the object ``repro.telemetry.archive.read_archive``
    returns; raises ``ValueError`` when it carries no decision columns
    (the scenario ran without a control plane).
    """
    if "dec_time" not in archive.columns:
        raise ValueError(
            "archive has no decision columns (dec_*): the run had no control plane"
        )
    meta = archive.meta.get("decisions", {})
    return _build_records(archive.columns, meta)


def explain_archive(archive) -> list:
    """Cross-check each decision's window inputs against the delay columns.

    The controller's sliding window samples by **arrival time**: at tick
    ``t`` it holds every logged query with ``t - window <= arrival <= t``.
    Recomputing the p99 over exactly those archived rows must reproduce
    the recorded input bit-for-bit (dropped queries appear in neither the
    log nor the collector, so the reconstruction is exact).

    Returns ``[(record, ok, recomputed_p99, n_window), ...]``.
    """
    from ..telemetry.columns import array_percentile

    records = decisions_from_archive(archive)
    window = archive.meta.get("decisions", {}).get("window")
    arrivals = archive.columns.get("log_arrival")
    finishes = archive.columns.get("log_finish")
    out = []
    for rec in records:
        if window is None or arrivals is None or finishes is None:
            out.append((rec, False, float("nan"), -1))
            continue
        mask = (arrivals >= rec.time - window) & (arrivals <= rec.time)
        vals = (finishes[mask] - arrivals[mask])
        n_window = int(vals.size)
        if n_window:
            p99 = float(array_percentile(vals, 99))
        else:
            p99 = float("nan")
        same_p99 = (p99 == rec.p99) or (math.isnan(p99) and math.isnan(rec.p99))
        ok = same_p99 and (rec.n_queries in (-1, n_window))
        out.append((rec, ok, p99, n_window))
    return out


def render_decisions(records, checks=None) -> str:
    """The ``repro explain`` timeline table.

    *checks* is :func:`explain_archive` output for the same archive; when
    given, its per-record verdicts replace *records* entirely (they carry
    the same :class:`DecisionRecord` objects plus the cross-check result).
    """
    lines = [
        f"{'time':>8s} {'query#':>8s} {'controller':20s} {'decision':14s} "
        f"{'value':>8s} {'p99':>8s} {'backlog':>8s} {'check':>6s}  detail"
    ]
    if checks:
        rows = [(rec, "ok" if ok else "FAIL") for rec, ok, _, _ in checks]
    else:
        rows = [(rec, "-") for rec in records]
    for rec, check in rows:
        value = f"{rec.value:>8.3g}" if rec.value is not None else f"{'-':>8s}"
        p99 = f"{rec.p99:>8.3f}" if not math.isnan(rec.p99) else f"{'-':>8s}"
        backlog = (
            f"{rec.backlog:>8.0f}" if not math.isnan(rec.backlog) else f"{'-':>8s}"
        )
        lines.append(
            f"{rec.time:>8.2f} {rec.query_index:>8d} {rec.controller:20s} "
            f"{rec.kind:14s} {value} {p99} {backlog} {check:>6s}  {rec.detail}"
        )
    return "\n".join(lines)
