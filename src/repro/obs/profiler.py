"""Engine-phase profiler: where does a batched run's wall clock go?

The batched engine (:mod:`repro.sim.fastpath`) reports one end-to-end
wall-clock number per run.  :class:`PhaseProfiler` splits that wall into
the engine's phases -- the arrival-order rng draw, the kernel's fused
sweep+commit, the numpy flush reductions, chunk listeners, exact-time
action callbacks, failure delegation, mirror materialisation -- using
``time.perf_counter_ns`` accumulators, plus per-chunk samples suitable
for a chrome://tracing export.

Two contracts the engine instrumentation holds:

* **Zero cost when off.**  Every instrumentation site in the engine is
  guarded by ``if prof is not None``; an unprofiled run makes no profiler
  calls at all (``tests/test_obs.py`` proves it with the monkeypatch
  trick).
* **Bit-identity when on.**  Profiling only reads the monotonic clock; it
  never touches an rng stream or reorders a float operation, so a
  profiled run's results are byte-identical to an unprofiled one.

Attribution is *exclusive*: nested phases (the listener loop runs inside
a flush, a flush inside an action's materialise) subtract their inclusive
time from the enclosing frame, so phase totals are disjoint and sum to
(at most) the measured wall.  The residual -- span bookkeeping, table
builds, result assembly -- is reported as ``other``.

Example -- profile a tiny batched run::

    >>> from repro.cluster import Deployment, DeploymentConfig, hen_testbed
    >>> dep = Deployment(DeploymentConfig(models=hen_testbed(8), p=4,
    ...                                   seed=1, charge_scheduling=False))
    >>> res = dep.run_queries_fast([i * 0.01 for i in range(64)], 4,
    ...                            profile=True)
    >>> sorted(res.profile.summary()["phases"])
    ['arrival_draw', 'flush', 'materialise', 'sweep_commit']
    >>> res.profile.summary()["n_chunks"]
    1
    >>> resolve_profile(False) is None
    True
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

__all__ = ["PHASES", "PhaseProfiler", "resolve_profile"]

#: Environment variable that enables profiling when the ``profile=`` kwarg
#: is left at its default (None).
PROFILE_ENV = "REPRO_PROFILE"

#: The engine phases, in hot-path order.  ``commit`` is the inline
#: per-query python commit (short spans, failure windows, per-query
#: ``pq_fn``); ``reference`` is the per-query reference path.
PHASES = (
    "arrival_draw",
    "sweep_commit",
    "commit",
    "flush",
    "listeners",
    "actions",
    "delegate",
    "materialise",
    "reference",
)

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class PhaseProfiler:
    """Accumulates exclusive per-phase wall time in nanoseconds.

    ``begin``/``end`` bracket a phase with proper nesting (a child's
    inclusive time is subtracted from its parent's exclusive total);
    ``add_ns``/``add_s`` fold an externally measured duration into a
    phase (and out of the currently open frame, if any).  Per-chunk
    samples land in append-only columns for the trace export.
    """

    __slots__ = (
        "epoch_ns",
        "totals_ns",
        "counts",
        "wall_ns",
        "_stack",
        "_chunk_start",
        "_chunk_nq",
        "_chunk_t0",
        "_chunk_draw",
        "_chunk_kernel",
        "_chunk_flush",
    )

    def __init__(self) -> None:
        from ..telemetry.columns import GrowArray

        self.epoch_ns = time.perf_counter_ns()
        self.totals_ns: dict[str, int] = {}
        self.counts: dict[str, int] = {}
        self.wall_ns = 0
        #: open frames: [phase, t0_ns, child_ns]
        self._stack: list[list] = []
        self._chunk_start = GrowArray(dtype="int64")
        self._chunk_nq = GrowArray(dtype="int64")
        self._chunk_t0 = GrowArray(dtype="int64")
        self._chunk_draw = GrowArray(dtype="int64")
        self._chunk_kernel = GrowArray(dtype="int64")
        self._chunk_flush = GrowArray(dtype="int64")

    # -- accumulation ------------------------------------------------------
    def begin(self, phase: str) -> None:
        self._stack.append([phase, time.perf_counter_ns(), 0])

    def end(self) -> int:
        """Close the innermost frame; returns its *inclusive* duration (ns)."""
        phase, t0, child = self._stack.pop()
        dur = time.perf_counter_ns() - t0
        self.totals_ns[phase] = self.totals_ns.get(phase, 0) + dur - child
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if self._stack:
            self._stack[-1][2] += dur
        return dur

    def add_ns(self, phase: str, ns: int) -> None:
        """Fold an externally measured duration into *phase*.

        Also charged to the open frame's children, so a measurement taken
        inside a ``begin``/``end`` bracket is not double counted.
        """
        self.totals_ns[phase] = self.totals_ns.get(phase, 0) + ns
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if self._stack:
            self._stack[-1][2] += ns

    def add_s(self, phase: str, seconds: float) -> None:
        self.add_ns(phase, int(seconds * 1e9))

    def add_wall(self, seconds: float) -> None:
        """Account one engine run's end-to-end wall clock."""
        self.wall_ns += int(seconds * 1e9)

    def record_chunk(
        self,
        start: int,
        nq: int,
        t0_ns: int,
        draw_ns: int,
        kernel_ns: int,
        flush_ns: int,
    ) -> None:
        """One bulk chunk's sample: query range + phase durations."""
        self._chunk_start.append(start)
        self._chunk_nq.append(nq)
        self._chunk_t0.append(t0_ns - self.epoch_ns)
        self._chunk_draw.append(draw_ns)
        self._chunk_kernel.append(kernel_ns)
        self._chunk_flush.append(flush_ns)

    # -- reporting ---------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return self._chunk_start.n

    def total_ns(self) -> int:
        return sum(self.totals_ns.values())

    def coverage(self) -> float:
        """Fraction of the measured wall the phase totals explain."""
        if self.wall_ns <= 0:
            return float("nan")
        return self.total_ns() / self.wall_ns

    def summary(self) -> dict:
        """JSON-ready totals: per-phase ns + call counts, wall, coverage."""
        return {
            "wall_ns": self.wall_ns,
            "phases": {
                name: {"ns": ns, "calls": self.counts.get(name, 0)}
                for name, ns in sorted(self.totals_ns.items())
            },
            "coverage": self.coverage(),
            "n_chunks": self.n_chunks,
        }

    def phase_us_per_query(self, n_queries: int) -> dict[str, float]:
        """Per-phase microseconds per query (the bench snapshot columns)."""
        n = max(int(n_queries), 1)
        return {
            name: round(1e-3 * ns / n, 4)
            for name, ns in sorted(self.totals_ns.items())
        }

    def columns(self) -> dict:
        """Per-chunk samples as archive-ready numpy columns."""
        return {
            "prof_chunk_start": self._chunk_start.copy(),
            "prof_chunk_nq": self._chunk_nq.copy(),
            "prof_chunk_t0_ns": self._chunk_t0.copy(),
            "prof_chunk_draw_ns": self._chunk_draw.copy(),
            "prof_chunk_kernel_ns": self._chunk_kernel.copy(),
            "prof_chunk_flush_ns": self._chunk_flush.copy(),
        }

    def render_table(self, n_queries: int | None = None) -> str:
        """Human-readable phase breakdown (the ``repro profile`` table)."""
        wall = self.wall_ns
        lines = [
            f"{'phase':14s} {'calls':>8s} {'total ms':>10s} "
            f"{'us/query':>10s} {'share':>7s}"
        ]
        order = [p for p in PHASES if p in self.totals_ns]
        order += [p for p in sorted(self.totals_ns) if p not in order]
        for name in order:
            ns = self.totals_ns[name]
            per_q = (
                f"{1e-3 * ns / n_queries:>10.2f}"
                if n_queries
                else f"{'-':>10s}"
            )
            share = f"{ns / wall:>6.1%}" if wall > 0 else f"{'-':>7s}"
            lines.append(
                f"{name:14s} {self.counts.get(name, 0):>8d} "
                f"{ns / 1e6:>10.2f} {per_q} {share}"
            )
        if wall > 0:
            other = wall - self.total_ns()
            per_q = (
                f"{1e-3 * other / n_queries:>10.2f}"
                if n_queries
                else f"{'-':>10s}"
            )
            lines.append(
                f"{'other':14s} {'-':>8s} {other / 1e6:>10.2f} "
                f"{per_q} {other / wall:>6.1%}"
            )
            lines.append(
                f"{'wall':14s} {'-':>8s} {wall / 1e6:>10.2f} "
                f"{'':>10s} {self.coverage():>6.1%} covered"
            )
        return "\n".join(lines)

    def chrome_trace(self) -> dict:
        """The chunk spans as a chrome://tracing / Perfetto JSON object.

        One "X" (complete) event per phase per bulk chunk, laid out
        back-to-back from each chunk's real start timestamp; load the
        file at ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events = []
        starts = self._chunk_start.view().tolist()
        nqs = self._chunk_nq.view().tolist()
        t0s = self._chunk_t0.view().tolist()
        draws = self._chunk_draw.view().tolist()
        kernels = self._chunk_kernel.view().tolist()
        flushes = self._chunk_flush.view().tolist()
        for i in range(len(starts)):
            ts = t0s[i] / 1e3  # chrome trace timestamps are microseconds
            args = {"chunk": i, "start": starts[i], "nq": nqs[i]}
            for name, dur_ns in (
                ("arrival_draw", draws[i]),
                ("sweep_commit", kernels[i]),
                ("flush", flushes[i]),
            ):
                events.append(
                    {
                        "name": name,
                        "cat": "engine",
                        "ph": "X",
                        "ts": round(ts, 3),
                        "dur": round(dur_ns / 1e3, 3),
                        "pid": 1,
                        "tid": 1,
                        "args": args,
                    }
                )
                ts += dur_ns / 1e3
        for name, ns in sorted(self.totals_ns.items()):
            events.append(
                {
                    "name": f"total:{name}",
                    "cat": "totals",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": round(ns / 1e3, 3),
                    "pid": 1,
                    "tid": 2,
                    "args": {"calls": self.counts.get(name, 0)},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
            fh.write("\n")


def resolve_profile(profile) -> Optional[PhaseProfiler]:
    """The engine-facing knob: kwarg beats environment beats off.

    * ``None`` (the default) -- consult ``REPRO_PROFILE`` (truthy values:
      1/true/yes/on, case-insensitive);
    * an existing :class:`PhaseProfiler` -- use it (accumulates across
      runs);
    * any other truthy value -- a fresh profiler; falsy -- off.
    """
    if profile is None:
        env = os.environ.get(PROFILE_ENV, "")
        if env.strip().lower() in _TRUTHY:
            return PhaseProfiler()
        return None
    if isinstance(profile, PhaseProfiler):
        return profile
    return PhaseProfiler() if profile else None
