"""Growable columnar storage and bit-exact array statistics.

The telemetry subsystem keeps per-query results as flat numpy columns
rather than lists of per-query objects: a chunk of queries lands as one
array copy, summary statistics run as array reductions, and the objects
the legacy API exposes (:class:`~repro.telemetry.records.QueryRecord`,
:class:`~repro.telemetry.records.QueryBreakdown`) are materialised lazily,
on demand.

Two invariants matter here:

* **Loss-free storage.**  Columns are float64/int64, so every python float
  or int that goes in comes back bit-identical.
* **Bit-exact statistics.**  :func:`array_percentile` reproduces the exact
  float operations of the historic sorted-list implementation
  (``repro.sim.tracing.percentile``) via ``np.partition``, so the golden
  regression pins -- and every controller threshold decision derived from a
  percentile -- are unchanged by the columnar port.
"""

from __future__ import annotations

import math

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

__all__ = ["GrowArray", "array_percentile"]

_MIN_CAP = 64


class GrowArray:
    """An append-only 1-D array with amortised-doubling growth.

    Scalar appends and bulk extends both cost O(1) amortised per element;
    :meth:`view` exposes the filled prefix without copying.
    """

    __slots__ = ("_data", "n")

    def __init__(self, dtype="float64", capacity: int = _MIN_CAP) -> None:
        self._data = np.empty(max(int(capacity), 1), dtype=dtype)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    @property
    def dtype(self):
        return self._data.dtype

    def _reserve(self, extra: int) -> None:
        need = self.n + extra
        cap = len(self._data)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        data = np.empty(cap, dtype=self._data.dtype)
        data[: self.n] = self._data[: self.n]
        self._data = data

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self.n] = value
        self.n += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._data.dtype)
        k = len(values)
        if k == 0:
            return
        self._reserve(k)
        self._data[self.n : self.n + k] = values
        self.n += k

    def view(self) -> "np.ndarray":
        """The filled prefix (a live view -- copy before holding long-term)."""
        return self._data[: self.n]

    def copy(self) -> "np.ndarray":
        return self._data[: self.n].copy()

    def shift_down(self, lo: int) -> int:
        """Drop the first *lo* elements in place; returns the new length."""
        if lo <= 0:
            return self.n
        keep = self.n - lo
        self._data[:keep] = self._data[lo : self.n]
        self.n = keep
        return keep


def array_percentile(values: "np.ndarray", q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Bit-identical to the historic sorted-list implementation
    (``sorted(values)`` + the same interpolation arithmetic): sorting order
    on float64 is total here (telemetry columns hold no NaNs), and the
    interpolation ``data[lo] + (data[hi] - data[lo]) * (pos - lo)`` runs the
    identical float64 operations.  ``np.partition`` places the two order
    statistics without sorting the whole array.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        raise ValueError("empty sequence")
    if n == 1:
        return float(values[0])
    pos = (q / 100.0) * (n - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    lo = min(max(lo, 0), n - 1)
    hi = min(max(hi, 0), n - 1)
    if lo == hi:
        part = np.partition(values, lo)
        return float(part[lo])
    part = np.partition(values, (lo, hi))
    d_lo = float(part[lo])
    d_hi = float(part[hi])
    return d_lo + (d_hi - d_lo) * (pos - lo)
