"""Columnar telemetry: chunk listeners, lazy logs, snapshots, archives.

The result-representation layer of the reproduction.  Per-query telemetry
(records, breakdowns, listener callbacks) historically cost more
interpreter time than scheduling itself; this subsystem makes the batched
engine's flat chunk arrays the *primary* representation:

* :mod:`~repro.telemetry.columns` -- growable columns and bit-exact array
  percentiles;
* :mod:`~repro.telemetry.records` -- the columnar :class:`DelayLog` /
  :class:`BreakdownLog` with lazy :class:`QueryRecord` /
  :class:`QueryBreakdown` materialisation;
* :mod:`~repro.telemetry.listeners` -- the :class:`ChunkListener` API
  (one call per flushed chunk) plus the deprecation shim that keeps legacy
  per-query ``query_listeners`` bit-identical;
* :mod:`~repro.telemetry.snapshot` -- capture/restore of full deployment
  state, byte-identical continuation;
* :mod:`~repro.telemetry.archive` -- compressed columnar run archives
  (npz) behind ``repro archive info/diff``, written whole-run or
  streamed append-per-chunk (:class:`ArchiveWriter`).

See ``docs/telemetry.md`` for the contracts.
"""

from .columns import GrowArray, array_percentile
from .listeners import (
    ChunkArrays,
    ChunkListener,
    ListenerList,
    drive_legacy_listeners,
)
from .records import (
    EXPLODING_SLOPE,
    BreakdownLog,
    DelayLog,
    QueryBreakdown,
    QueryRecord,
    RecordView,
    linear_fit,
    percentile,
)

__all__ = [
    "GrowArray",
    "array_percentile",
    "ChunkArrays",
    "ChunkListener",
    "ListenerList",
    "drive_legacy_listeners",
    "EXPLODING_SLOPE",
    "BreakdownLog",
    "DelayLog",
    "QueryBreakdown",
    "QueryRecord",
    "RecordView",
    "linear_fit",
    "percentile",
    "SNAPSHOT_SCHEMA",
    "Snapshot",
    "SnapshotError",
    "capture_deployment",
    "restore_deployment",
    "ARCHIVE_SCHEMA",
    "ArchiveWriter",
    "RunArchive",
    "collect_columns",
    "write_archive",
    "write_archive_columns",
    "read_archive",
    "archive_info",
    "archive_diff",
]


def __getattr__(name):  # lazy: snapshot/archive pull in cluster/np.savez
    if name in (
        "SNAPSHOT_SCHEMA",
        "Snapshot",
        "SnapshotError",
        "capture_deployment",
        "restore_deployment",
    ):
        from . import snapshot

        return getattr(snapshot, name)
    if name in (
        "ARCHIVE_SCHEMA",
        "ArchiveWriter",
        "RunArchive",
        "collect_columns",
        "write_archive",
        "write_archive_columns",
        "read_archive",
        "archive_info",
        "archive_diff",
    ):
        from . import archive

        return getattr(archive, name)
    raise AttributeError(name)
