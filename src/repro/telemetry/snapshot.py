"""Snapshot/restore of full deployment + engine state.

A snapshot captures *everything* a continued run reads: configuration,
rings and membership, per-server mirrors, the front-end's EWMA speed
estimates and counters, every ``random.Random`` stream (including the
module-global named streams of :mod:`repro._rng`), the traffic ledger, and
the columnar telemetry logs.  The contract is **byte-identical
continuation**: running queries ``[0, k)``, snapshotting, restoring in a
fresh process, and running ``[k, n)`` produces exactly the state an
uninterrupted run of ``[0, n)`` produces -- same log columns, same server
counters, same rng draws -- bit for bit (wall-clock-derived fields such as
``scheduling_delay`` excepted, the same exclusion the batched/per-query
differential tests apply).

Take snapshots at a *materialisation point*: between two queries on the
per-query path, or from inside a batched-path
:class:`~repro.sim.fastpath.Action` (the engine materialises exact object
state before every action fires).  Snapshotting mid-chunk is not
expressible through the public API, so this is not a practical constraint.

Serialisation: scalar/object state goes into a JSON-able ``meta`` dict
(schema-versioned via :data:`SNAPSHOT_SCHEMA`); the telemetry columns ride
alongside as numpy arrays.  :meth:`Snapshot.save` packs both into one
compressed ``.npz``; floats survive the JSON leg exactly (``repr``-based
round trip).

Deployments with real object stores (``store_objects=True``) are refused:
replica inventories are derived state of the reconfigurator and are out of
scope for the telemetry subsystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .. import _rng

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "Snapshot",
    "capture_deployment",
    "restore_deployment",
]

#: Version of the snapshot layout.  Bump on any incompatible change to the
#: ``meta`` dict or the column set; ``load``/``restore`` refuse mismatches.
SNAPSHOT_SCHEMA = 1

#: rng owners whose aliasing must survive the round trip (deployment,
#: membership and front-end usually share one generator object).
_RNG_OWNERS = ("deployment", "membership", "frontend", "network")


class SnapshotError(RuntimeError):
    """Raised when a deployment cannot be captured or restored."""


@dataclass
class Snapshot:
    """One captured deployment: JSON-able ``meta`` + numpy columns."""

    meta: dict
    columns: dict

    def save(self, path) -> None:
        """Write a compressed ``.npz`` archive of this snapshot."""
        payload = np.frombuffer(
            json.dumps(self.meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, meta_json=payload, **self.columns)

    @classmethod
    def load(cls, path) -> "Snapshot":
        """Read a snapshot written by :meth:`save`."""
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
            columns = {
                key: data[key] for key in data.files if key != "meta_json"
            }
        schema = meta.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"snapshot schema {schema!r} not supported "
                f"(this build reads schema {SNAPSHOT_SCHEMA})"
            )
        return cls(meta=meta, columns=columns)


# -- capture -----------------------------------------------------------------
def _server_state(server) -> dict:
    return {
        "name": server.name,
        "speed": server.speed,
        "fixed_overhead": server.fixed_overhead,
        "cores": server.cores,
        "power_idle": server.power_idle,
        "power_busy": server.power_busy,
        "lane_busy_until": list(server._lane_busy_until),
        "busy_time": server.busy_time,
        "tasks_run": server.tasks_run,
        "objects_matched": server.objects_matched,
        "failed": server.failed,
        "keep_trace": server.keep_trace,
        "trace": [
            [t.query_id, t.arrival, t.start, t.finish, t.work]
            for t in server.trace
        ],
    }


def _model_state(model) -> dict:
    return {
        "name": model.name,
        "cores": model.cores,
        "match_rate": model.match_rate,
        "disk_rate": model.disk_rate,
        "fixed_overhead": model.fixed_overhead,
        "power": {
            "idle_watts": model.power.idle_watts,
            "busy_watts": model.power.busy_watts,
        },
    }


def _rng_groups(deployment) -> tuple[list, dict]:
    """States of the deployment's generators, deduplicated by identity.

    Components frequently share one ``random.Random`` (the constructor
    hands ``self.rng`` to the membership server and the front-end), and
    the interleaving of their draws is part of the reproducible behaviour
    -- so the restore must rebuild the exact aliasing, not just the
    states.
    """
    rngs = {
        "deployment": deployment.rng,
        "membership": deployment.membership.rng,
        "frontend": deployment.frontend.rng,
        "network": deployment.network.rng,
    }
    groups: list = []
    owner_group: dict = {}
    seen: dict = {}
    for owner in _RNG_OWNERS:
        rng = rngs[owner]
        gi = seen.get(id(rng))
        if gi is None:
            gi = len(groups)
            groups.append(_rng.stream_state(rng))
            seen[id(rng)] = gi
        owner_group[owner] = gi
    return groups, owner_group


def capture_deployment(deployment) -> Snapshot:
    """Freeze *deployment* into a :class:`Snapshot`.

    Call only at a materialisation point (between per-query calls, or from
    inside a batched-path :class:`~repro.sim.fastpath.Action`): the
    captured object state must be exact, and mid-chunk the engine's
    arrays are ahead of the objects.
    """
    config = deployment.config
    if config.store_objects or deployment.reconfig is not None:
        raise SnapshotError(
            "deployments with real object stores (store_objects=True) "
            "cannot be snapshotted"
        )
    fe = deployment.frontend
    fe_cfg = fe.config
    net = deployment.network
    rng_groups, rng_owner = _rng_groups(deployment)

    rings_meta = []
    for ring in deployment.rings:
        rings_meta.append(
            {
                "version": ring.version,
                "nodes": [
                    {
                        "name": n.name,
                        "start": n.start,
                        "speed": n.speed,
                        "alive": n.alive,
                        "ring_id": n.ring_id,
                        "meta": n.meta,
                    }
                    for n in ring.nodes()
                ],
            }
        )

    membership = deployment.membership
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "config": {
            "models": [_model_state(m) for m in config.models],
            "p": config.p,
            "n_rings": config.n_rings,
            "dataset_size": config.dataset_size,
            "in_memory": config.in_memory,
            "seed": config.seed,
            "failure_timeout": config.failure_timeout,
            "fixed_overhead": config.fixed_overhead,
            "store_objects": False,
            "n_objects_stored": config.n_objects_stored,
            "update_cost": config.update_cost,
            "charge_scheduling": config.charge_scheduling,
        },
        "frontend_config": {
            "method": fe_cfg.method,
            "random_starts": fe_cfg.random_starts,
            "adjust_ranges": fe_cfg.adjust_ranges,
            "max_splits": fe_cfg.max_splits,
            "ewma_alpha": fe_cfg.ewma_alpha,
            "fixed_overhead": fe_cfg.fixed_overhead,
            "failure_delta": fe_cfg.failure_delta,
        },
        "network": {"rtt": net.rtt, "jitter": net.jitter},
        "rng": {
            "groups": rng_groups,
            "owners": rng_owner,
            "global": _rng.capture_streams(),
        },
        "rings": rings_meta,
        "membership": {
            "active": list(membership.active),
            "moves": membership.moves,
            "inserts": membership.inserts,
            "history": {
                name: [rec.ring_id, rec.start, rec.speed]
                for name, rec in membership._history.items()
            },
        },
        "frontend": {
            "query_counter": fe._query_counter,
            "total_iterations": fe.total_iterations,
            "total_estimates": fe.total_estimates,
            "queries_scheduled": fe.queries_scheduled,
            "stats": {
                name: {
                    "speed_estimate": st.speed_estimate,
                    "busy_until": st.busy_until,
                    "last_seen": st.last_seen,
                    "outstanding": st.outstanding,
                    "completed": st.completed,
                }
                for name, st in fe.stats.items()
            },
        },
        "servers": [_server_state(s) for s in deployment.servers.values()],
        "retired": [_server_state(s) for s in deployment.retired.values()],
        "model_of": dict(deployment.model_of),
        "known_dead": dict(deployment._known_dead),
        "next_node_idx": deployment._next_node_idx,
        "scheduling_wallclock": deployment.scheduling_wallclock,
        "log_dropped": deployment.log.dropped,
    }
    try:
        meta = json.loads(json.dumps(meta))  # validate + normalise
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"deployment state is not JSON-serialisable: {exc}"
        ) from exc

    log = deployment.log
    bd = deployment.breakdowns
    columns = {
        "log_query_id": log.column("query_id").copy(),
        "log_arrival": log.column("arrival").copy(),
        "log_finish": log.column("finish").copy(),
        "log_pq": log.column("pq").copy(),
        "log_subqueries": log.column("subqueries").copy(),
        "log_scheduling": log.column("scheduling").copy(),
        "bd_scheduling": bd.column("scheduling").copy(),
        "bd_network": bd.column("network").copy(),
        "bd_queueing": bd.column("queueing").copy(),
        "bd_service": bd.column("service").copy(),
        "bd_total": bd.column("total").copy(),
        "ledger": np.array(
            [
                deployment.ledger.query_messages,
                deployment.ledger.query_bytes,
                deployment.ledger.result_messages,
                deployment.ledger.result_bytes,
                deployment.ledger.update_messages,
                deployment.ledger.update_bytes,
                deployment.ledger.control_messages,
                deployment.ledger.control_bytes,
                deployment.ledger.cross_rack_bytes,
            ],
            dtype=np.int64,
        ),
    }
    return Snapshot(meta=meta, columns=columns)


# -- restore -----------------------------------------------------------------
def _restore_server(state: dict):
    from ..sim.server import SimServer, TaskRecord

    server = SimServer(
        name=state["name"],
        speed=state["speed"],
        fixed_overhead=state["fixed_overhead"],
        cores=state["cores"],
        power_idle=state["power_idle"],
        power_busy=state["power_busy"],
    )
    server._lane_busy_until = [float(x) for x in state["lane_busy_until"]]
    server.busy_time = state["busy_time"]
    server.tasks_run = state["tasks_run"]
    server.objects_matched = state["objects_matched"]
    server.failed = state["failed"]
    server.keep_trace = state["keep_trace"]
    server.trace = [TaskRecord(*row) for row in state["trace"]]
    return server


def restore_deployment(snapshot: Snapshot):
    """Rebuild a live :class:`~repro.cluster.deployment.Deployment`.

    The returned deployment continues byte-identically: same rng draws,
    same scheduling decisions, same telemetry columns.  Listener lists
    start empty (subscribers are process-local), and the batched path's
    cover-table cache starts cold (it is a pure function of rings + pq
    and rebuilds on first use).  Module-global rng streams
    (:func:`repro._rng.capture_streams`) are restored as a side effect.
    """
    from ..cluster.deployment import Deployment, DeploymentConfig
    from ..cluster.models import ServerModel
    from ..core.frontend import FrontEnd, FrontEndConfig, NodeStats
    from ..core.membership import MembershipServer, _NodeRecord
    from ..core.ring import Ring, RingNode
    from ..sim.energy import PowerProfile
    from ..sim.network import NetworkModel, TrafficLedger
    from ..telemetry.listeners import ListenerList
    from ..telemetry.records import BreakdownLog, DelayLog

    meta = snapshot.meta
    schema = meta.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot schema {schema!r} not supported "
            f"(this build reads schema {SNAPSHOT_SCHEMA})"
        )
    cols = snapshot.columns

    rng_meta = meta["rng"]
    group_rngs = [_rng.stream_from_state(s) for s in rng_meta["groups"]]
    owner_rng = {
        owner: group_rngs[gi] for owner, gi in rng_meta["owners"].items()
    }
    _rng.restore_streams(rng_meta["global"])

    fe_cfg = FrontEndConfig(**meta["frontend_config"])
    models = [
        ServerModel(
            name=m["name"],
            cores=m["cores"],
            match_rate=m["match_rate"],
            disk_rate=m["disk_rate"],
            fixed_overhead=m["fixed_overhead"],
            power=PowerProfile(**m["power"]),
        )
        for m in meta["config"]["models"]
    ]
    net = NetworkModel(
        rtt=meta["network"]["rtt"],
        jitter=meta["network"]["jitter"],
        rng=owner_rng["network"],
    )
    cfg_meta = meta["config"]
    config = DeploymentConfig(
        models=models,
        p=cfg_meta["p"],
        n_rings=cfg_meta["n_rings"],
        dataset_size=cfg_meta["dataset_size"],
        in_memory=cfg_meta["in_memory"],
        seed=cfg_meta["seed"],
        frontend=fe_cfg,
        network=net,
        failure_timeout=cfg_meta["failure_timeout"],
        fixed_overhead=cfg_meta["fixed_overhead"],
        store_objects=False,
        n_objects_stored=cfg_meta["n_objects_stored"],
        update_cost=cfg_meta["update_cost"],
        charge_scheduling=cfg_meta["charge_scheduling"],
    )

    rings = []
    for ring_meta in meta["rings"]:
        ring = Ring()
        for nd in ring_meta["nodes"]:
            node = RingNode(
                nd["name"], nd["start"], speed=nd["speed"], ring_id=nd["ring_id"]
            )
            node.alive = nd["alive"]
            node.meta = dict(nd["meta"])
            ring.add_node(node)
        ring._version = ring_meta["version"]
        rings.append(ring)

    ms_meta = meta["membership"]
    membership = MembershipServer(
        n_rings=max(1, len(rings)), rng=owner_rng["membership"]
    )
    membership.rings = rings
    membership.active = list(ms_meta["active"])
    membership.moves = ms_meta["moves"]
    membership.inserts = ms_meta["inserts"]
    membership._history = {
        name: _NodeRecord(ring_id=rec[0], start=rec[1], speed=rec[2])
        for name, rec in ms_meta["history"].items()
    }

    fe_meta = meta["frontend"]
    frontend = FrontEnd(
        rings, config.dataset_size, fe_cfg, rng=owner_rng["frontend"]
    )
    frontend.stats = {
        name: NodeStats(**st) for name, st in fe_meta["stats"].items()
    }
    frontend._query_counter = fe_meta["query_counter"]
    frontend.total_iterations = fe_meta["total_iterations"]
    frontend.total_estimates = fe_meta["total_estimates"]
    frontend.queries_scheduled = fe_meta["queries_scheduled"]

    ledger = TrafficLedger(*(int(x) for x in cols["ledger"]))

    log = DelayLog(dropped=meta["log_dropped"])
    log.append_columns(
        cols["log_query_id"],
        cols["log_arrival"],
        cols["log_finish"],
        cols["log_pq"],
        cols["log_subqueries"],
        cols["log_scheduling"],
    )
    breakdowns = BreakdownLog()
    breakdowns.append_columns(
        cols["bd_scheduling"],
        cols["bd_network"],
        cols["bd_queueing"],
        cols["bd_service"],
        cols["bd_total"],
    )

    dep = Deployment.__new__(Deployment)
    dep.config = config
    dep.rng = owner_rng["deployment"]
    dep.membership = membership
    dep.rings = membership.rings
    dep.model_of = dict(meta["model_of"])
    dep.servers = {
        s["name"]: _restore_server(s) for s in meta["servers"]
    }
    dep.frontend = frontend
    dep.network = net
    dep.ledger = ledger
    dep.log = log
    dep.breakdowns = breakdowns
    dep.scheduling_wallclock = meta["scheduling_wallclock"]
    dep.stores = {}
    dep.reconfig = None
    dep._known_dead = dict(meta["known_dead"])
    dep.query_listeners = ListenerList()
    dep.chunk_listeners = []
    dep.retired = {
        s["name"]: _restore_server(s) for s in meta["retired"]
    }
    dep._next_node_idx = meta["next_node_idx"]
    dep.cover_tables = None
    return dep
