"""The chunk-array listener API and the legacy per-query adapter.

The batched engine accounts queries in chunks (see
:mod:`repro.sim.fastpath`): between two cut points it produces flat arrays
-- one row per query -- and flushes them in one pass.  Chunk listeners are
the matching observation API: instead of one python call per completed
query, a listener receives **one call per flushed chunk** with the chunk's
columns as numpy arrays.  On action-free spans this removes the last
per-query python from the hot path.

* :class:`ChunkArrays` is the per-chunk column bundle (borrowed views --
  copy anything you retain past the call).
* :class:`ChunkListener` is the subscriber base class.  Register instances
  on ``deployment.chunk_listeners``.  The per-query reference path feeds
  the same subscribers through :meth:`ChunkListener.observe_record`, whose
  default adapts a single record into a one-row chunk -- so a listener
  written against arrays works identically under either engine.
* :class:`ListenerList` is the deprecation shim for the legacy per-query
  ``deployment.query_listeners`` hook: appending a callback still works
  bit-identically (the flush drives legacy callbacks off the same arrays,
  via :func:`drive_legacy_listeners`) but emits a one-time
  ``DeprecationWarning`` pointing at the chunk API.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .records import QueryRecord

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = [
    "ChunkArrays",
    "ChunkListener",
    "ListenerList",
    "drive_legacy_listeners",
]


@dataclass(frozen=True)
class ChunkArrays:
    """One flushed chunk's per-query columns (parallel, equal-length).

    Arrays are *borrowed*: they may be views into engine-owned buffers that
    are reused after the listener returns.  Copy (or reduce) inside
    ``observe_chunk``; never store the arrays themselves.
    """

    query_ids: "np.ndarray"  # int64
    arrivals: "np.ndarray"  # float64, monotone within and across chunks
    finishes: "np.ndarray"  # float64
    pqs: "np.ndarray"  # int64
    subqueries: "np.ndarray"  # int64
    scheduling: "np.ndarray"  # float64, scheduler wall-clock per query
    network: "np.ndarray"  # float64, rtt per query
    queueing: "np.ndarray"  # float64, max sub-query wait
    service: "np.ndarray"  # float64, max sub-query execution time
    total: "np.ndarray"  # float64, end-to-end delay

    def __len__(self) -> int:
        return len(self.arrivals)

    def delays(self) -> "np.ndarray":
        """Per-query delay (finish - arrival) for this chunk."""
        return self.finishes - self.arrivals

    @classmethod
    def from_record(
        cls, record: QueryRecord, breakdown=None
    ) -> "ChunkArrays":
        """A one-row chunk adapting a single per-query record."""

        def f64(x):
            return np.array([x], dtype=np.float64)

        def i64(x):
            return np.array([x], dtype=np.int64)

        return cls(
            query_ids=i64(record.query_id),
            arrivals=f64(record.arrival),
            finishes=f64(record.finish),
            pqs=i64(record.pq),
            subqueries=i64(record.subqueries),
            scheduling=f64(record.scheduling_delay),
            network=f64(breakdown.network if breakdown is not None else 0.0),
            queueing=f64(breakdown.queueing if breakdown is not None else 0.0),
            service=f64(breakdown.service if breakdown is not None else 0.0),
            total=f64(
                breakdown.total
                if breakdown is not None
                else record.finish - record.arrival
            ),
        )


class ChunkListener:
    """Base class for chunk-array subscribers.

    Implement :meth:`observe_chunk`.  ``observe_record`` is the per-query
    adapter used by the reference path (and by failure-window queries the
    batched engine delegates to it); the default wraps the record in a
    one-row chunk, so array-native subclasses only implement one method.
    Subclasses with a cheap scalar path (e.g. the metrics collector) may
    override ``observe_record`` directly.
    """

    def observe_chunk(self, arrays: ChunkArrays, start: int, nq: int) -> None:
        """One flushed chunk: *nq* queries whose first row is global record
        index *start* in the deployment's log."""
        raise NotImplementedError

    def observe_record(self, record: QueryRecord, breakdown=None) -> None:
        self.observe_chunk(ChunkArrays.from_record(record, breakdown), -1, 1)


# -- legacy per-query listeners ---------------------------------------------
_DEPRECATION_EMITTED = False


def _reset_deprecation_warning() -> None:
    """Test hook: re-arm the one-time deprecation warning."""
    global _DEPRECATION_EMITTED
    _DEPRECATION_EMITTED = False


class ListenerList(list):
    """``query_listeners`` container that deprecates per-query callbacks.

    Still a real list (legacy code may iterate, clear, or index it), but
    the first ``append`` in the process emits a ``DeprecationWarning``
    steering new code to ``deployment.chunk_listeners``.  Behaviour is
    unchanged: callbacks receive every completed :class:`QueryRecord`, in
    completion order, driven off the columnar chunks by
    :func:`drive_legacy_listeners`.
    """

    def append(self, listener) -> None:
        global _DEPRECATION_EMITTED
        if not _DEPRECATION_EMITTED:
            _DEPRECATION_EMITTED = True
            warnings.warn(
                "per-query query_listeners are deprecated; subscribe a "
                "ChunkListener on deployment.chunk_listeners instead "
                "(see docs/telemetry.md)",
                DeprecationWarning,
                stacklevel=2,
            )
        super().append(listener)


def drive_legacy_listeners(
    listeners: Iterable,
    query_ids,
    arrivals,
    finishes,
    pqs,
    subqueries,
    scheduling,
) -> None:
    """Feed legacy per-query callbacks from one chunk's columns.

    Materialises each row as a :class:`QueryRecord` -- exactly the object
    the per-query path would have built -- and calls every listener with
    it, in completion order.  Only invoked when legacy listeners exist, so
    listener-free runs pay nothing per query.
    """
    for k in range(len(arrivals)):
        record = QueryRecord(
            query_id=query_ids[k],
            arrival=arrivals[k],
            finish=finishes[k],
            pq=pqs[k],
            subqueries=subqueries[k],
            scheduling_delay=scheduling[k],
        )
        for listener in listeners:
            listener(record)
