"""Columnar query records: the primary result representation.

Historically every completed query appended a :class:`QueryRecord` (and a
:class:`QueryBreakdown`) object to python lists -- ~2.5 us of interpreter
time per query, the last per-query python on the batched fast path.  This
module inverts the representation: the *columns* (flat float64/int64
arrays, one row per query) are primary, and the record objects are
materialised lazily when (and only when) somebody indexes or iterates the
legacy views.

* :class:`DelayLog` keeps the Chapter 6 summary API (mean/percentile/
  exploding-queue detection) but stores columns; ``log.records`` returns a
  :class:`RecordView`, a list-like lazy materialiser.
* :class:`BreakdownLog` does the same for ``deployment.breakdowns``.
* Bulk appends (:meth:`DelayLog.append_columns`) land a whole flushed chunk
  as a handful of array copies -- zero per-query python.

Every summary statistic reproduces the historic float operations exactly
(python left-to-right sums stay python sums; percentiles go through
:func:`~repro.telemetry.columns.array_percentile`, which is bit-identical
to the sorted-list formula), so the golden regression pins hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .columns import GrowArray, array_percentile

__all__ = [
    "EXPLODING_SLOPE",
    "QueryRecord",
    "QueryBreakdown",
    "DelayLog",
    "RecordView",
    "BreakdownLog",
    "linear_fit",
    "percentile",
]

#: Slope of the fitted delay(time) line above which the run is deemed
#: saturated (queries/sec backlog growing without bound) -- Section 6.1.
EXPLODING_SLOPE = 0.1


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``y = a*x + b``; returns (slope, intercept)."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have equal length")
    if n == 0:
        return 0.0, 0.0
    if n == 1:
        return 0.0, ys[0]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0, mean_y
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    if len(values) == 0:
        raise ValueError("empty sequence")
    return array_percentile(np.asarray(values, dtype=np.float64), q)


@dataclass(slots=True)
class QueryRecord:
    """Timing of one completed query."""

    query_id: int
    arrival: float
    finish: float
    pq: int = 0
    subqueries: int = 0
    scheduling_delay: float = 0.0

    @property
    def delay(self) -> float:
        return self.finish - self.arrival


@dataclass(slots=True)
class QueryBreakdown:
    """Fig 7.11's delay decomposition for one query."""

    scheduling: float  # real wall-clock spent in the scheduler
    network: float  # rtt components
    queueing: float  # max sub-query wait behind prior work
    service: float  # max sub-query execution time
    total: float


class RecordView:
    """List-like lazy view over a :class:`DelayLog`'s columns.

    Supports ``len``, integer/negative indexing, slicing, iteration, and
    ``append`` (which writes a row back into the columns), which covers
    every historical use of ``log.records``.  Indexing materialises a fresh
    :class:`QueryRecord`; two reads of the same row return equal (but not
    identical) objects.
    """

    __slots__ = ("_log",)

    def __init__(self, log: "DelayLog") -> None:
        self._log = log

    def __len__(self) -> int:
        return self._log.n_records

    def __bool__(self) -> bool:
        return self._log.n_records > 0

    def _make(self, i: int) -> QueryRecord:
        log = self._log
        return QueryRecord(
            query_id=int(log._qid.view()[i]),
            arrival=float(log._arrival.view()[i]),
            finish=float(log._finish.view()[i]),
            pq=int(log._pq.view()[i]),
            subqueries=int(log._subqueries.view()[i]),
            scheduling_delay=float(log._sched.view()[i]),
        )

    def __getitem__(self, key):
        n = self._log.n_records
        if isinstance(key, slice):
            return [self._make(i) for i in range(*key.indices(n))]
        i = key
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("record index out of range")
        return self._make(i)

    def __iter__(self) -> Iterator[QueryRecord]:
        for i in range(self._log.n_records):
            yield self._make(i)

    def append(self, record: QueryRecord) -> None:
        self._log.add(record)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RecordView of {self._log.n_records} records>"


class BreakdownLog:
    """List-like columnar store of :class:`QueryBreakdown` rows."""

    __slots__ = ("_scheduling", "_network", "_queueing", "_service", "_total")

    _FIELDS = ("scheduling", "network", "queueing", "service", "total")

    def __init__(self) -> None:
        self._scheduling = GrowArray()
        self._network = GrowArray()
        self._queueing = GrowArray()
        self._service = GrowArray()
        self._total = GrowArray()

    def __len__(self) -> int:
        return self._total.n

    def __bool__(self) -> bool:
        return self._total.n > 0

    def append(self, b: QueryBreakdown) -> None:
        self._scheduling.append(b.scheduling)
        self._network.append(b.network)
        self._queueing.append(b.queueing)
        self._service.append(b.service)
        self._total.append(b.total)

    def append_columns(self, scheduling, network, queueing, service, total) -> None:
        """Bulk-append one flushed chunk (parallel equal-length sequences)."""
        self._scheduling.extend(scheduling)
        self._network.extend(network)
        self._queueing.extend(queueing)
        self._service.extend(service)
        self._total.extend(total)

    def _make(self, i: int) -> QueryBreakdown:
        return QueryBreakdown(
            scheduling=float(self._scheduling.view()[i]),
            network=float(self._network.view()[i]),
            queueing=float(self._queueing.view()[i]),
            service=float(self._service.view()[i]),
            total=float(self._total.view()[i]),
        )

    def __getitem__(self, key):
        n = len(self)
        if isinstance(key, slice):
            return [self._make(i) for i in range(*key.indices(n))]
        i = key
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("breakdown index out of range")
        return self._make(i)

    def __iter__(self) -> Iterator[QueryBreakdown]:
        for i in range(len(self)):
            yield self._make(i)

    def column(self, name: str) -> "np.ndarray":
        """The named column's filled prefix (live view; copy to retain)."""
        if name not in self._FIELDS:
            raise KeyError(name)
        return getattr(self, f"_{name}").view()

    def columns(self) -> dict:
        return {name: self.column(name) for name in self._FIELDS}


class DelayLog:
    """Accumulates completed queries (columnar) and summarises them.

    Drop-in replacement for the historic list-of-records ``DelayLog``:
    the constructor still accepts ``records=[...]``/``dropped=`` and the
    summary methods produce bit-identical floats; the per-query rows now
    live in flat columns and ``records`` is a lazy :class:`RecordView`.
    """

    __slots__ = (
        "_qid",
        "_arrival",
        "_finish",
        "_pq",
        "_subqueries",
        "_sched",
        "dropped",
    )

    def __init__(self, records=None, dropped: int = 0) -> None:
        self._qid = GrowArray(dtype="int64")
        self._arrival = GrowArray()
        self._finish = GrowArray()
        self._pq = GrowArray(dtype="int64")
        self._subqueries = GrowArray(dtype="int64")
        self._sched = GrowArray()
        self.dropped = dropped  # queries not serviced (yield accounting)
        for record in records or ():
            self.add(record)

    # -- writing -----------------------------------------------------------
    def add(self, record: QueryRecord) -> None:
        self._qid.append(record.query_id)
        self._arrival.append(record.arrival)
        self._finish.append(record.finish)
        self._pq.append(record.pq)
        self._subqueries.append(record.subqueries)
        self._sched.append(record.scheduling_delay)

    def append_columns(
        self, query_ids, arrivals, finishes, pqs, subqueries, scheduling
    ) -> None:
        """Bulk-append one flushed chunk (parallel equal-length sequences)."""
        self._qid.extend(query_ids)
        self._arrival.extend(arrivals)
        self._finish.extend(finishes)
        self._pq.extend(pqs)
        self._subqueries.extend(subqueries)
        self._sched.extend(scheduling)

    # -- access ------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return self._arrival.n

    def __len__(self) -> int:
        return self._arrival.n

    @property
    def records(self) -> RecordView:
        return RecordView(self)

    _COLUMNS = ("query_id", "arrival", "finish", "pq", "subqueries", "scheduling")
    _COL_ATTRS = ("_qid", "_arrival", "_finish", "_pq", "_subqueries", "_sched")

    def column(self, name: str) -> "np.ndarray":
        """The named column's filled prefix (live view; copy to retain)."""
        try:
            attr = self._COL_ATTRS[self._COLUMNS.index(name)]
        except ValueError:
            raise KeyError(name) from None
        return getattr(self, attr).view()

    def columns(self) -> dict:
        return {name: self.column(name) for name in self._COLUMNS}

    # -- summaries (historic float semantics, array-backed) ----------------
    def delays(self) -> list[float]:
        # elementwise float64 subtraction == python float subtraction, bit
        # for bit, so this matches the historic [r.delay for r in records]
        return (self._finish.view() - self._arrival.view()).tolist()

    def is_exploding(self) -> bool:
        """Apply the paper's slope test to delay(arrival_time)."""
        if self.n_records < 2:
            return False
        xs = self._arrival.view().tolist()
        ys = self.delays()
        slope, _ = linear_fit(xs, ys)
        return slope > EXPLODING_SLOPE

    def mean_delay(self) -> float:
        """Mean delay, or ``inf`` when the queue is exploding (paper rule)."""
        if self.n_records == 0:
            return math.nan
        if self.is_exploding():
            return math.inf
        delays = self.delays()
        # python left-to-right sum, not np.sum: pairwise summation would
        # drift the golden pins by a few ulps
        return sum(delays) / len(delays)

    def raw_mean_delay(self) -> float:
        delays = self.delays()
        return sum(delays) / len(delays) if delays else math.nan

    def max_delay(self) -> float:
        if self.n_records == 0:
            return math.nan
        return float(np.max(self._finish.view() - self._arrival.view()))

    def percentile_delay(self, q: float) -> float:
        if self.n_records == 0:
            raise ValueError("empty sequence")
        return array_percentile(self._finish.view() - self._arrival.view(), q)

    def yield_fraction(self) -> float:
        """Brewer's *yield*: serviced queries / offered queries."""
        total = self.n_records + self.dropped
        return self.n_records / total if total else 1.0

    def throughput(self, elapsed: float) -> float:
        return self.n_records / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DelayLog(records=<{self.n_records} rows>, dropped={self.dropped})"
