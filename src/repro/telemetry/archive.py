"""Compressed columnar run archives.

A run archive is the durable form of a run's telemetry: the delay-log and
breakdown columns packed into one compressed ``.npz`` plus a JSON metadata
blob (schema version, drop count, and caller-supplied context such as
scenario name / engine / kernel).  Columns compress well -- float64 delay
series run a few bytes per query -- so whole experiment matrices can be
kept and diffed instead of re-run.

* :func:`write_archive` / :func:`read_archive` -- writer and reader;
* :class:`ArchiveWriter` -- a streaming chunk-listener writer: columns
  spool to disk append-per-chunk during the run, so archiving a day-scale
  trace replay never holds the telemetry in memory twice;
* :func:`archive_info` -- summary (query counts, per-column stats,
  bytes/query) backing ``repro archive info``;
* :func:`archive_diff` -- column-by-column comparison with first-divergence
  reporting, backing ``repro archive diff`` and the CI bit-identity gate.

Example -- write, read back, and diff a small run::

    >>> import tempfile, os
    >>> from repro.cluster import Deployment, DeploymentConfig, hen_testbed
    >>> dep = Deployment(DeploymentConfig(models=hen_testbed(8), p=4,
    ...                                   seed=1, charge_scheduling=False))
    >>> _ = dep.run_queries_fast([i * 0.01 for i in range(32)], 4)
    >>> path = os.path.join(tempfile.mkdtemp(), "run.npz")
    >>> write_archive(path, dep, meta={"scenario": "doctest"})
    >>> arch = read_archive(path)
    >>> arch.n_queries, arch.meta["scenario"]
    (32, 'doctest')
    >>> archive_diff(arch, arch)["identical"]
    True
"""

from __future__ import annotations

import json
import math
import os
import shutil
import tempfile
import zipfile
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .columns import array_percentile
from .listeners import ChunkListener

__all__ = [
    "ARCHIVE_SCHEMA",
    "ArchiveWriter",
    "RunArchive",
    "collect_columns",
    "write_archive",
    "write_archive_columns",
    "read_archive",
    "archive_info",
    "archive_diff",
]

#: Version of the archive layout; readers refuse archives they cannot parse.
ARCHIVE_SCHEMA = 1

_LOG_COLUMNS = (
    "log_query_id",
    "log_arrival",
    "log_finish",
    "log_pq",
    "log_subqueries",
    "log_scheduling",
)
_BD_COLUMNS = (
    "bd_scheduling",
    "bd_network",
    "bd_queueing",
    "bd_service",
    "bd_total",
)

#: wall-clock-derived columns: diffs report but do not gate on them (the
#: same exclusion the batched/per-query differential tests apply).
_WALL_COLUMNS = frozenset({"log_scheduling", "bd_scheduling"})


def _gate_exempt(name: str) -> bool:
    """Columns the gated diff reports but never gates on.

    Wall-clock columns measure this machine, and the per-chunk admission
    counters (``shedchunk_*``) follow the engine's chunking -- the
    reference path writes one whole-run row where the batched engine
    writes one per flushed chunk.  Both are legitimately engine-dependent;
    everything else must match bit for bit.
    """
    return name in _WALL_COLUMNS or name.startswith("shedchunk_")

#: storage dtype per archive column (little-endian, platform-independent).
_COLUMN_DTYPES = {
    "log_query_id": "<i8",
    "log_pq": "<i8",
    "log_subqueries": "<i8",
}

#: archive column -> :class:`~repro.telemetry.listeners.ChunkArrays` field.
_CHUNK_FIELDS = {
    "log_query_id": "query_ids",
    "log_arrival": "arrivals",
    "log_finish": "finishes",
    "log_pq": "pqs",
    "log_subqueries": "subqueries",
    "log_scheduling": "scheduling",
    "bd_scheduling": "scheduling",
    "bd_network": "network",
    "bd_queueing": "queueing",
    "bd_service": "service",
    "bd_total": "total",
}


def _column_dtype(name: str) -> "np.dtype":
    return np.dtype(_COLUMN_DTYPES.get(name, "<f8"))


def _archive_columns(wall_columns: bool = True) -> tuple[str, ...]:
    names = _LOG_COLUMNS + _BD_COLUMNS
    if wall_columns:
        return names
    return tuple(n for n in names if n not in _WALL_COLUMNS)


@dataclass
class RunArchive:
    """One archived run: JSON ``meta`` + named numpy columns."""

    meta: dict
    columns: dict
    path: str | None = None

    @property
    def n_queries(self) -> int:
        return int(self.columns["log_arrival"].size)

    def delays(self) -> "np.ndarray":
        return self.columns["log_finish"] - self.columns["log_arrival"]


def collect_columns(deployment, wall_columns: bool = True) -> dict:
    """*deployment*'s telemetry columns keyed by archive column name.

    With ``wall_columns=False`` the wall-clock-derived columns
    (``log_scheduling``/``bd_scheduling``) are left out -- the right shape
    for archives that must be bit-identical across runs (record/replay).
    """
    log = deployment.log
    bd = deployment.breakdowns
    sources = {
        "log_query_id": lambda: log.column("query_id"),
        "log_arrival": lambda: log.column("arrival"),
        "log_finish": lambda: log.column("finish"),
        "log_pq": lambda: log.column("pq"),
        "log_subqueries": lambda: log.column("subqueries"),
        "log_scheduling": lambda: log.column("scheduling"),
        "bd_scheduling": lambda: bd.column("scheduling"),
        "bd_network": lambda: bd.column("network"),
        "bd_queueing": lambda: bd.column("queueing"),
        "bd_service": lambda: bd.column("service"),
        "bd_total": lambda: bd.column("total"),
    }
    return {
        name: sources[name]() for name in _archive_columns(wall_columns)
    }


def write_archive_columns(
    path, columns: dict, meta: dict | None = None, dropped: int = 0
) -> None:
    """Write pre-collected *columns* as an archive at *path* (``.npz``)."""
    full_meta = dict(meta or {})
    full_meta["schema"] = ARCHIVE_SCHEMA
    full_meta.setdefault("dropped", dropped)
    payload = np.frombuffer(
        json.dumps(full_meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, meta_json=payload, **columns)


def write_archive(
    path, deployment, meta: dict | None = None, wall_columns: bool = True
) -> None:
    """Archive *deployment*'s telemetry columns at *path* (``.npz``).

    *meta* is caller context (scenario name, engine, kernel, parameters);
    it must be JSON-serialisable and is stored under the caller's keys
    (reserved keys: ``schema``, ``dropped``).  ``wall_columns=False``
    omits the wall-clock-derived columns, making the archive comparable
    bit-for-bit across runs of the same stimulus.
    """
    columns = collect_columns(deployment, wall_columns=wall_columns)
    full_meta = dict(meta or {})
    if not wall_columns:
        full_meta["wall_columns"] = False
    write_archive_columns(
        path, columns, meta=full_meta, dropped=deployment.log.dropped
    )


class ArchiveWriter(ChunkListener):
    """Streaming archive writer: append-per-chunk, finalise to ``.npz``.

    Register on ``deployment.chunk_listeners`` before the run; every
    flushed chunk's columns are appended to per-column raw spool files (a
    few array-to-bytes copies, no per-query python, nothing retained in
    memory), and :meth:`close` assembles the final archive --
    byte-compatible with :func:`write_archive` -- from the spools.  Use as
    a context manager to guarantee cleanup::

        with ArchiveWriter(path, meta={...}) as writer:
            deployment.chunk_listeners.append(writer)
            ...  # run
            writer.close(dropped=deployment.log.dropped)

    Exiting the ``with`` block without :meth:`close` aborts (removes the
    spools, writes nothing) -- a crashed run leaves no half-archive.
    """

    def __init__(
        self, path, meta: dict | None = None, wall_columns: bool = True
    ) -> None:
        self.path = path
        self.meta = dict(meta or {})
        self.n_rows = 0
        self._columns = _archive_columns(wall_columns)
        if not wall_columns:
            self.meta["wall_columns"] = False
        self._spool_dir = tempfile.mkdtemp(prefix="repro-archive-")
        self._spools = {
            name: open(os.path.join(self._spool_dir, name), "wb")
            for name in self._columns
        }
        self._closed = False

    # -- listener interface ------------------------------------------------
    def observe_chunk(self, arrays, start: int, nq: int) -> None:
        if self._closed:
            raise RuntimeError("ArchiveWriter is closed")
        for name, fp in self._spools.items():
            col = getattr(arrays, _CHUNK_FIELDS[name])
            fp.write(
                np.ascontiguousarray(col, dtype=_column_dtype(name)).tobytes()
            )
        self.n_rows += len(arrays)

    # -- lifecycle ---------------------------------------------------------
    def close(
        self,
        dropped: int = 0,
        meta: dict | None = None,
        extra_columns: dict | None = None,
    ) -> None:
        """Finalise the archive (flush spools, write the ``.npz``).

        *extra_columns* adds arbitrary caller-supplied numpy columns
        (e.g. the control plane's ``dec_*`` decision columns) next to the
        streamed per-query ones; :func:`read_archive` returns every
        non-meta column generically, so they round-trip for free.
        """
        if self._closed:
            return
        full_meta = dict(self.meta)
        full_meta.update(meta or {})
        full_meta["schema"] = ARCHIVE_SCHEMA
        full_meta.setdefault("dropped", dropped)
        for fp in self._spools.values():
            fp.close()
        try:
            payload = np.frombuffer(
                json.dumps(full_meta).encode("utf-8"), dtype=np.uint8
            )
            with zipfile.ZipFile(
                self.path, "w", zipfile.ZIP_DEFLATED
            ) as zf:
                with zf.open("meta_json.npy", "w") as out:
                    np.lib.format.write_array(out, payload, version=(1, 0))
                for name in self._columns:
                    dtype = _column_dtype(name)
                    spool = os.path.join(self._spool_dir, name)
                    if self.n_rows:
                        arr = np.memmap(
                            spool, dtype=dtype, mode="r", shape=(self.n_rows,)
                        )
                    else:
                        arr = np.empty(0, dtype=dtype)
                    with zf.open(f"{name}.npy", "w") as out:
                        np.lib.format.write_array(out, arr, version=(1, 0))
                    del arr  # release the memmap before the spool unlinks
                for name, col in (extra_columns or {}).items():
                    if name in self._columns or name == "meta_json":
                        raise ValueError(
                            f"extra column {name!r} collides with a "
                            "streamed archive column"
                        )
                    with zf.open(f"{name}.npy", "w") as out:
                        np.lib.format.write_array(
                            out, np.ascontiguousarray(col), version=(1, 0)
                        )
        finally:
            self._cleanup()

    def abort(self) -> None:
        """Discard the spools without writing an archive."""
        if self._closed:
            return
        for fp in self._spools.values():
            fp.close()
        self._cleanup()

    def _cleanup(self) -> None:
        self._closed = True
        shutil.rmtree(self._spool_dir, ignore_errors=True)

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.abort()  # no-op when close() already ran


def read_archive(path) -> RunArchive:
    """Read an archive written by :func:`write_archive`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        columns = {k: data[k] for k in data.files if k != "meta_json"}
    schema = meta.get("schema")
    if schema != ARCHIVE_SCHEMA:
        raise ValueError(
            f"archive schema {schema!r} not supported "
            f"(this build reads schema {ARCHIVE_SCHEMA})"
        )
    return RunArchive(meta=meta, columns=columns, path=str(path))


def archive_info(archive: RunArchive) -> dict:
    """Summary statistics of one archive (the ``archive info`` payload)."""
    n = archive.n_queries
    info = {
        "path": archive.path,
        "schema": archive.meta.get("schema"),
        "n_queries": n,
        "dropped": archive.meta.get("dropped", 0),
        "columns": sorted(archive.columns),
        "meta": {
            k: v
            for k, v in archive.meta.items()
            if k not in ("schema", "dropped")
        },
    }
    if archive.path is not None and os.path.exists(archive.path):
        size = os.path.getsize(archive.path)
        info["file_bytes"] = size
        info["bytes_per_query"] = size / n if n else math.nan
    if n:
        delays = archive.delays()
        info["mean_delay"] = float(delays.sum() / n)
        for q in (50, 95, 99):
            info[f"p{q}_delay"] = array_percentile(delays, q)
    return info


def _first_divergence(a: "np.ndarray", b: "np.ndarray") -> int:
    k = min(a.size, b.size)
    neq = a[:k] != b[:k]
    idx = np.nonzero(neq)[0]
    if idx.size:
        return int(idx[0])
    return k  # length mismatch: diverges where the shorter one ends


def archive_diff(a: RunArchive, b: RunArchive) -> dict:
    """Column-by-column comparison of two archives.

    Returns ``{"identical": bool, "gated_identical": bool, "columns":
    {name: {...}}}``.  ``identical`` requires every shared column equal
    and no column present on one side only; ``gated_identical`` applies
    the differential-test exclusion of wall-clock-derived columns
    (``log_scheduling``/``bd_scheduling``) and of the engine-chunking
    admission counters (``shedchunk_*``) -- the right predicate for CI
    bit-identity gates.
    """
    names = sorted(set(a.columns) | set(b.columns))
    out: dict = {"columns": {}}
    identical = True
    gated_identical = True
    for name in names:
        ca = a.columns.get(name)
        cb = b.columns.get(name)
        if ca is None or cb is None:
            entry = {"equal": False, "missing_in": "a" if ca is None else "b"}
            identical = False
            if not _gate_exempt(name):
                gated_identical = False
            out["columns"][name] = entry
            continue
        equal = ca.shape == cb.shape and bool(np.array_equal(ca, cb))
        entry = {"equal": equal, "n_a": int(ca.size), "n_b": int(cb.size)}
        if not equal:
            entry["first_divergence"] = _first_divergence(ca, cb)
            k = min(ca.size, cb.size)
            if k and np.issubdtype(ca.dtype, np.floating):
                entry["max_abs_diff"] = float(
                    np.max(np.abs(ca[:k] - cb[:k]))
                )
            identical = False
            if not _gate_exempt(name):
                gated_identical = False
        out["columns"][name] = entry
    out["identical"] = identical
    out["gated_identical"] = gated_identical
    return out
