"""Compressed columnar run archives.

A run archive is the durable form of a run's telemetry: the delay-log and
breakdown columns packed into one compressed ``.npz`` plus a JSON metadata
blob (schema version, drop count, and caller-supplied context such as
scenario name / engine / kernel).  Columns compress well -- float64 delay
series run a few bytes per query -- so whole experiment matrices can be
kept and diffed instead of re-run.

* :func:`write_archive` / :func:`read_archive` -- writer and reader;
* :func:`archive_info` -- summary (query counts, per-column stats,
  bytes/query) backing ``repro archive info``;
* :func:`archive_diff` -- column-by-column comparison with first-divergence
  reporting, backing ``repro archive diff`` and the CI bit-identity gate.

Example -- write, read back, and diff a small run::

    >>> import tempfile, os
    >>> from repro.cluster import Deployment, DeploymentConfig, hen_testbed
    >>> dep = Deployment(DeploymentConfig(models=hen_testbed(8), p=4,
    ...                                   seed=1, charge_scheduling=False))
    >>> _ = dep.run_queries_fast([i * 0.01 for i in range(32)], 4)
    >>> path = os.path.join(tempfile.mkdtemp(), "run.npz")
    >>> write_archive(path, dep, meta={"scenario": "doctest"})
    >>> arch = read_archive(path)
    >>> arch.n_queries, arch.meta["scenario"]
    (32, 'doctest')
    >>> archive_diff(arch, arch)["identical"]
    True
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .columns import array_percentile

__all__ = [
    "ARCHIVE_SCHEMA",
    "RunArchive",
    "write_archive",
    "read_archive",
    "archive_info",
    "archive_diff",
]

#: Version of the archive layout; readers refuse archives they cannot parse.
ARCHIVE_SCHEMA = 1

_LOG_COLUMNS = (
    "log_query_id",
    "log_arrival",
    "log_finish",
    "log_pq",
    "log_subqueries",
    "log_scheduling",
)
_BD_COLUMNS = (
    "bd_scheduling",
    "bd_network",
    "bd_queueing",
    "bd_service",
    "bd_total",
)

#: wall-clock-derived columns: diffs report but do not gate on them (the
#: same exclusion the batched/per-query differential tests apply).
_WALL_COLUMNS = frozenset({"log_scheduling", "bd_scheduling"})


@dataclass
class RunArchive:
    """One archived run: JSON ``meta`` + named numpy columns."""

    meta: dict
    columns: dict
    path: str | None = None

    @property
    def n_queries(self) -> int:
        return int(self.columns["log_arrival"].size)

    def delays(self) -> "np.ndarray":
        return self.columns["log_finish"] - self.columns["log_arrival"]


def write_archive(path, deployment, meta: dict | None = None) -> None:
    """Archive *deployment*'s telemetry columns at *path* (``.npz``).

    *meta* is caller context (scenario name, engine, kernel, parameters);
    it must be JSON-serialisable and is stored under the caller's keys
    (reserved keys: ``schema``, ``dropped``).
    """
    log = deployment.log
    bd = deployment.breakdowns
    full_meta = dict(meta or {})
    full_meta["schema"] = ARCHIVE_SCHEMA
    full_meta["dropped"] = log.dropped
    payload = np.frombuffer(
        json.dumps(full_meta).encode("utf-8"), dtype=np.uint8
    )
    columns = {
        "log_query_id": log.column("query_id"),
        "log_arrival": log.column("arrival"),
        "log_finish": log.column("finish"),
        "log_pq": log.column("pq"),
        "log_subqueries": log.column("subqueries"),
        "log_scheduling": log.column("scheduling"),
        "bd_scheduling": bd.column("scheduling"),
        "bd_network": bd.column("network"),
        "bd_queueing": bd.column("queueing"),
        "bd_service": bd.column("service"),
        "bd_total": bd.column("total"),
    }
    np.savez_compressed(path, meta_json=payload, **columns)


def read_archive(path) -> RunArchive:
    """Read an archive written by :func:`write_archive`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        columns = {k: data[k] for k in data.files if k != "meta_json"}
    schema = meta.get("schema")
    if schema != ARCHIVE_SCHEMA:
        raise ValueError(
            f"archive schema {schema!r} not supported "
            f"(this build reads schema {ARCHIVE_SCHEMA})"
        )
    return RunArchive(meta=meta, columns=columns, path=str(path))


def archive_info(archive: RunArchive) -> dict:
    """Summary statistics of one archive (the ``archive info`` payload)."""
    n = archive.n_queries
    info = {
        "path": archive.path,
        "schema": archive.meta.get("schema"),
        "n_queries": n,
        "dropped": archive.meta.get("dropped", 0),
        "columns": sorted(archive.columns),
        "meta": {
            k: v
            for k, v in archive.meta.items()
            if k not in ("schema", "dropped")
        },
    }
    if archive.path is not None and os.path.exists(archive.path):
        size = os.path.getsize(archive.path)
        info["file_bytes"] = size
        info["bytes_per_query"] = size / n if n else math.nan
    if n:
        delays = archive.delays()
        info["mean_delay"] = float(delays.sum() / n)
        for q in (50, 95, 99):
            info[f"p{q}_delay"] = array_percentile(delays, q)
    return info


def _first_divergence(a: "np.ndarray", b: "np.ndarray") -> int:
    k = min(a.size, b.size)
    neq = a[:k] != b[:k]
    idx = np.nonzero(neq)[0]
    if idx.size:
        return int(idx[0])
    return k  # length mismatch: diverges where the shorter one ends


def archive_diff(a: RunArchive, b: RunArchive) -> dict:
    """Column-by-column comparison of two archives.

    Returns ``{"identical": bool, "gated_identical": bool, "columns":
    {name: {...}}}``.  ``identical`` requires every shared column equal
    and no column present on one side only; ``gated_identical`` applies
    the differential-test exclusion of wall-clock-derived columns
    (``log_scheduling``/``bd_scheduling``) -- the right predicate for CI
    bit-identity gates.
    """
    names = sorted(set(a.columns) | set(b.columns))
    out: dict = {"columns": {}}
    identical = True
    gated_identical = True
    for name in names:
        ca = a.columns.get(name)
        cb = b.columns.get(name)
        if ca is None or cb is None:
            entry = {"equal": False, "missing_in": "a" if ca is None else "b"}
            identical = False
            if name not in _WALL_COLUMNS:
                gated_identical = False
            out["columns"][name] = entry
            continue
        equal = ca.shape == cb.shape and bool(np.array_equal(ca, cb))
        entry = {"equal": equal, "n_a": int(ca.size), "n_b": int(cb.size)}
        if not equal:
            entry["first_divergence"] = _first_divergence(ca, cb)
            k = min(ca.size, cb.size)
            if k and np.issubdtype(ca.dtype, np.floating):
                entry["max_abs_diff"] = float(
                    np.max(np.abs(ca[:k] - cb[:k]))
                )
            identical = False
            if name not in _WALL_COLUMNS:
                gated_identical = False
        out["columns"][name] = entry
    out["identical"] = identical
    out["gated_identical"] = gated_identical
    return out
