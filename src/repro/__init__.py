"""repro: a reproduction of ROAR (Rendezvous On A Ring, SIGCOMM 2009).

Subpackages:

* :mod:`repro.core` -- the ROAR algorithm: continuous ring, scheduling,
  failure handling, reconfiguration, load balancing, membership.
* :mod:`repro.rendezvous` -- the Distributed Rendezvous abstraction and the
  PTN / SW / RAND / dual baselines.
* :mod:`repro.sim` -- discrete-event simulation substrate (the paper's
  Chapter 6 evaluation model).
* :mod:`repro.pps` -- Privacy Preserving Search, the paper's application:
  encrypted keyword/numeric/range matching, metadata store, match engine.
* :mod:`repro.cluster` -- full simulated deployments of PPS-on-ROAR (the
  Chapter 7 experimental rig).
* :mod:`repro.analysis` -- closed-form models: bandwidth, delay bounds,
  availability, index-based-vs-PPS trade-off.
* :mod:`repro.control` -- closed-loop control plane: live metrics windows,
  SLO-driven elasticity, online re-partitioning, scenario runner.
"""

__version__ = "1.1.0"

__all__ = ["core", "rendezvous", "sim", "pps", "cluster", "analysis", "control"]
