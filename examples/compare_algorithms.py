#!/usr/bin/env python3
"""Compare the Distributed Rendezvous algorithms head to head.

Runs PTN, SW, RAND, ROAR (with and without its optimisations) and the
theoretical optimum through the Chapter 6 simulator at increasing load, and
prints the delay/harvest/cost picture that motivates ROAR.

Run:  python examples/compare_algorithms.py
"""

import math
import random

from repro.analysis import message_costs
from repro.cluster import ComparisonConfig, run_comparison
from repro.core.objects import generate_objects
from repro.rendezvous import Randomized, ServerInfo


def delay_table() -> None:
    print("Mean query delay (ms) on 90 heterogeneous servers, p = 9")
    print(f"{'load (q/s)':>12} {'optimal':>9} {'PTN':>9} {'ROAR':>9} "
          f"{'ROAR+opt':>9} {'SW':>9}")
    for rate in (5.0, 15.0, 25.0):
        row = [f"{rate:>12.0f}"]
        for algo, extra in (
            ("opt", {}),
            ("ptn", {}),
            ("roar", {}),
            ("roar", {"adjust": True, "splits": 1}),
            ("sw", {}),
        ):
            res = run_comparison(
                ComparisonConfig(
                    algorithm=algo, n_servers=90, p=9, dataset_size=1e6,
                    query_rate=rate, n_queries=400, seed=3, **extra,
                )
            )
            d = res.mean_delay
            row.append(f"{'sat.':>9}" if math.isinf(d) else f"{d*1000:>9.0f}")
        print(" ".join(row))


def harvest_demo() -> None:
    print("\nRandomized DR: probabilistic coverage (c = 2)")
    rng = random.Random(1)
    servers = [ServerInfo(f"node-{i}", 1.0) for i in range(40)]
    algo = Randomized(servers, r=5, c=2.0, rng=rng)
    algo.place(generate_objects(500, rng))
    harvests = []
    for _ in range(10):
        plan = algo.schedule(lambda name, fr: fr, rng=rng)
        harvests.append(algo.harvest(plan))
    print(f"  mean harvest over 10 queries: "
          f"{100*sum(harvests)/len(harvests):.1f}% "
          f"(queries {algo.servers_per_query} servers, "
          f"stores {algo.replicas_per_object} replicas -- ~4x the cost "
          "of a deterministic algorithm)")


def reconfiguration_costs() -> None:
    print("\nMessages to change the replication level by one "
          "(n=100, p=10, D=100k objects):")
    for algo in ("roar", "ptn"):
        costs = message_costs(algo, n=100, p=10, d=100_000)
        print(f"  {algo.upper():4s}: +1 replica = {costs.increase_r:>12,.0f}   "
              f"-1 replica = {costs.decrease_r:>12,.0f}")
    print("  (this asymmetry is the reason ROAR can treat p as a knob)")


def main() -> None:
    delay_table()
    harvest_demo()
    reconfiguration_costs()


if __name__ == "__main__":
    main()
