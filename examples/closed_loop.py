"""Closed-loop control plane walkthrough.

Runs the three built-in scenarios and shows what the controllers did:
a flash crowd absorbed by elastic scale-out, a compressed diurnal cycle
tracked by re-partitioning, and a correlated rack failure survived via
sub-query splitting plus membership rebuild.

Run with::

    PYTHONPATH=src python examples/closed_loop.py
"""

from repro.control import ScenarioConfig, run_scenario


def main() -> None:
    for scenario in ("flash-crowd", "diurnal", "rack-failure"):
        report = run_scenario(
            ScenarioConfig(scenario=scenario, duration=240.0, seed=1)
        )
        print("=" * 64)
        print(report.summary())
        print()


if __name__ == "__main__":
    main()
