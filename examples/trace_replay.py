#!/usr/bin/env python3
"""Record a run, replay it bit-identically, and diff the archives.

Walks the full record-then-replay loop from docs/traces.md:

1. run a scenario and *record* it -- freeze the drawn stimulus (every
   arrival, every exact-time update) plus the baseline telemetry;
2. *replay* the recording on the same engine, then cross-engine on the
   per-query reference path -- both must reproduce every simulated-time
   telemetry column byte for byte;
3. extract archives from both runs and diff them with the same oracle
   `repro archive diff --strict` uses;
4. feed a real CSV request log through the trace-dataloader registry and
   run it as a first-class workload.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.scenarios import Scenario, UpdateSpec, WorkloadSpec, execute_scenario
from repro.scenarios import trace_scenario
from repro.telemetry.archive import archive_diff, read_archive
from repro.traces import load_trace, read_recording, recording_to_archive, replay_recording


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="trace-replay-")
    rec_path = os.path.join(workdir, "steady.rec.npz")

    # --- 1. Record: run once, freeze the drawn stimulus ------------------
    scenario = Scenario(
        name="steady-demo",
        n_servers=10,
        p=4,
        dataset_size=1e6,
        seed=42,
        workload=WorkloadSpec(kind="poisson", rate=12.0, duration=10.0),
        updates=UpdateSpec(rate=5.0, zipf_s=1.1),
    )
    execute_scenario(scenario, engine="batched", record_path=rec_path)
    rec = read_recording(rec_path)
    print(f"Recorded {rec.stimulus.arrivals.size} arrivals and "
          f"{len(rec.stimulus.updates)} updates to {rec_path}")
    print(f"  engine={rec.engine} kernel={rec.kernel}")

    # --- 2. Replay: same engine, then cross-engine -----------------------
    same = replay_recording(rec_path)
    print(f"\nReplay on {same.engine}/{same.kernel}: "
          f"identical={same.identical}")
    cross = replay_recording(rec_path, engine="reference")
    print(f"Replay on {cross.engine}/{cross.kernel}: "
          f"identical={cross.identical}")
    assert same.identical and cross.identical, "replay must be bit-identical"

    # --- 3. Archive-level diff (what `repro archive diff --strict` runs) -
    base_arch = os.path.join(workdir, "recorded.npz")
    replay_arch = os.path.join(workdir, "replayed.npz")
    recording_to_archive(rec, base_arch)
    replay_recording(rec_path, archive_path=replay_arch)
    diff = archive_diff(read_archive(base_arch), read_archive(replay_arch))
    print(f"\nArchive diff: identical={diff['identical']} "
          f"({len(diff['columns'])} columns compared, wall-clock omitted)")
    assert diff["identical"]

    # --- 4. A real request log as a workload ------------------------------
    csv_path = os.path.join(workdir, "requests.csv")
    with open(csv_path, "w") as fp:
        fp.write("time,kind,pos\n")
        for i in range(200):
            fp.write(f"{0.05 * i:.2f},query,\n")
        fp.write("5.0,update,0.25\n")
    trace = load_trace(csv_path)
    print(f"\nLoaded {trace.n_queries} queries / {trace.n_updates} updates "
          f"from {csv_path}")
    execution = execute_scenario(trace_scenario(csv_path, n_servers=10, p=4,
                                                dataset_size=1e6))
    log = execution.deployment.log
    print(f"Trace run: {log.n_records} completed, "
          f"{execution.updates_applied} updates applied")

    print("\nAll replays bit-identical; see docs/traces.md for the contract.")


if __name__ == "__main__":
    main()
