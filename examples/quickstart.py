#!/usr/bin/env python3
"""Quickstart: the ROAR ring in five minutes.

Builds a small heterogeneous ring, stores objects on it, runs queries at a
few partitioning levels, then reconfigures the p/r trade-off online --
demonstrating the paper's core loop: store -> query -> re-balance -> re-tune.

Run:  python examples/quickstart.py
"""

import random

from repro.core import (
    FrontEnd,
    FrontEndConfig,
    Ring,
    RoarNode,
    Reconfigurator,
    generate_objects,
)


def main() -> None:
    rng = random.Random(7)

    # --- 1. A ring of 12 servers with mixed speeds -----------------------
    # Ranges proportional to speed = the load-balanced steady state.
    speeds = [rng.choice([1.0, 2.0, 4.0]) for _ in range(12)]
    ring = Ring.proportional(speeds)
    print("Ring layout (name @ start, range length, speed):")
    for node in ring:
        rng_len = ring.range_of(node).length
        print(f"  {node.name:8s} @ {node.start:.3f}  len={rng_len:.3f}  x{node.speed:g}")

    # --- 2. Store 500 objects at partitioning level p=4 ------------------
    p = 4
    objects = generate_objects(500, rng)
    stores = {n.name: RoarNode(n) for n in ring}
    recon = Reconfigurator(ring, stores, objects, p_initial=p)
    recon.initial_load()
    total_replicas = sum(s.stored_count() for s in stores.values())
    print(f"\nStored {len(objects)} objects at p={p}: "
          f"{total_replicas} replicas (r = n/p = {12/p:g} on average)")

    # --- 3. Schedule and execute a query ---------------------------------
    frontend = FrontEnd(ring, dataset_size=len(objects),
                        config=FrontEndConfig(adjust_ranges=True), rng=rng)
    qid, plan, schedule = frontend.schedule_query(now=0.0, pq=p)
    print(f"\nQuery {qid}: start id {schedule.start_id:.4f}, "
          f"predicted makespan {schedule.makespan:.4f}")
    matched = {}
    for sub in plan.to_subqueries(qid):
        owner = ring.node_in_charge(sub.dest)
        for obj in stores[owner.name].execute(sub):
            matched[obj.key] = matched.get(obj.key, 0) + 1
    assert len(matched) == len(objects), "coverage must be exact"
    assert all(v == 1 for v in matched.values()), "no duplicates allowed"
    print(f"Query visited all {len(matched)} objects exactly once "
          f"across {len(plan.subs)} sub-queries.")

    # --- 4. Query with pq > p (no reconfiguration needed) ----------------
    qid, plan, _ = frontend.schedule_query(now=0.0, pq=2 * p, p_store=p)
    matched = set()
    for sub in plan.to_subqueries(qid):
        owner = ring.node_in_charge(sub.dest)
        matched.update(o.key for o in stores[owner.name].execute(sub))
    print(f"Same data queried {2*p} ways: {len(matched)} objects covered.")

    # --- 5. Reconfigure the p/r trade-off online --------------------------
    print(f"\nReconfiguring p: {p} -> {p*2} (shrink replicas, instantly safe)")
    recon.request_p(p * 2)
    print(f"  safe pq right away: {recon.safe_pq:g}")
    recon.run_all_steps()
    print(f"  replicas now: {sum(s.stored_count() for s in stores.values())}")

    print(f"Reconfiguring p: {p*2} -> {p} (grow replicas, wait for downloads)")
    status = recon.request_p(p)
    print(f"  during downloads, safe pq: {status.safe_pq:g}")
    recon.run_all_steps()
    print(f"  done; bytes moved total: {recon.bytes_moved}")
    print("\nQuickstart complete.")


if __name__ == "__main__":
    main()
