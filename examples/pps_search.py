#!/usr/bin/env python3
"""Privacy Preserving Search end-to-end: encrypted queries over encrypted
metadata, distributed over a ROAR ring.

The server-side code never sees a plaintext keyword, filename, size or
date -- it matches encrypted trapdoors against encrypted Bloom metadata and
returns opaque identifiers.  This script plays both roles:

* the *user* builds a file corpus, encrypts metadata, and issues encrypted
  single- and multi-predicate queries;
* the *servers* (a 6-node ROAR ring) each hold the replicas their range
  requires and match sub-queries against their local stores.

Run:  python examples/pps_search.py
"""

import random

from repro.core import Ring
from repro.core.ids import Arc, frac
from repro.core.node import SubQuery, dedup_matches
from repro.core.scheduler import schedule_heap
from repro.pps import (
    CorpusConfig,
    MetadataCodec,
    MetadataStore,
    MultiPredicateQuery,
    Predicate,
    StoredItem,
    generate_corpus,
    keygen,
)

P = 3  # partitioning level


def main() -> None:
    rng = random.Random(99)

    # --- User side: encrypt the home directory ---------------------------
    key = keygen()  # stays on the user's devices
    codec = MetadataCodec(key, max_content_keywords=10)
    files = generate_corpus(CorpusConfig(n_files=400, keywords_per_file=6, seed=5))
    items = [StoredItem(rng.random(), codec.encrypt_file(f)) for f in files]
    plain = {it.item_id: f for it, f in zip(items, files)}
    print(f"Encrypted {len(files)} file descriptions "
          f"({codec.metadata_size_bytes()} B each); uploading to servers...")

    # --- Server side: a ROAR ring of metadata stores ---------------------
    ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(6)])
    server_stores = {}
    for node in ring:
        node_range = ring.range_of(node)
        mine = [it for it in items
                if Arc(it.item_id, 1.0 / P).intersects(node_range)]
        server_stores[node.name] = MetadataStore(mine, chunk_size=64)
        print(f"  {node.name}: {len(mine)} replicas")

    def run_distributed(match_fn):
        """Front-end logic: split, dispatch, merge."""
        est = lambda node, fr: fr / node.speed
        schedule = schedule_heap(ring, P, est)
        results = []
        for i in range(P):
            dest = frac(schedule.start_id + i / P)
            sub = SubQuery.normal(1, dest, P, index=i)
            store = server_stores[ring.node_in_charge(dest).name]
            window = Arc(frac(sub.dedup_origin - sub.dedup_width), sub.dedup_width)
            for item in store.load_range(window):
                if dedup_matches(item.item_id, sub) and match_fn(item.metadata):
                    results.append(item.item_id)
        return results

    # --- Query 1: a single keyword ---------------------------------------
    target_kw = files[0].keywords[0]
    enc_q = codec.encrypt_predicate(Predicate("keyword", "=", target_kw))
    hits = run_distributed(lambda m: codec.match(m, enc_q))
    truth = [it.item_id for it, f in zip(items, files) if target_kw in f.keywords]
    print(f"\nkeyword == {target_kw!r}: {len(hits)} matches "
          f"(ground truth {len(truth)})")
    for item_id in hits[:3]:
        print(f"  decrypted locally by the user -> {plain[item_id].path}")

    # --- Query 2: size range via inequality encoding ---------------------
    enc_q = codec.encrypt_predicate(Predicate("size", ">", 1_000_000))
    hits = run_distributed(lambda m: codec.match(m, enc_q))
    print(f"\nsize > 1MB: {len(hits)} matches")

    # --- Query 3: AND of two predicates with dynamic ordering ------------
    preds = [
        (codec.scheme, codec.encrypt_predicate(Predicate("keyword", "=", target_kw))),
        (codec.scheme, codec.encrypt_predicate(Predicate("size", ">", 1024))),
    ]
    query = MultiPredicateQuery(preds, op="and", sample_size=100)
    hits = run_distributed(query.matches)
    print(f"\nkeyword == {target_kw!r} AND size > 1KB: {len(hits)} matches; "
          f"predicate order learned: {query.current_order()}")

    # --- What the server learned ------------------------------------------
    print("\nWhat the servers saw: opaque nonces, Bloom bits and trapdoors.")
    example = items[0].metadata
    print(f"  e.g. metadata payload[:16] = {example.payload[1][:16].hex()}...")
    print("They can count matches per query, but never read a keyword.")


if __name__ == "__main__":
    main()
