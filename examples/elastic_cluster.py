#!/usr/bin/env python3
"""An elastic search cluster riding a daily load wave.

Simulates a full deployment (mixed hardware, the Table 7.1 catalogue) under
a diurnal query load while everything the paper promises happens at once:

* the dynamic-p controller raises/lowers the partitioning level with load;
* several nodes fail abruptly mid-day and queries keep completing (the
  sub-query splitting fall-back);
* the energy cost of running at the adapted level is compared against
  pinning p at the maximum.

Run:  python examples/elastic_cluster.py
"""

import random

from repro.cluster import (
    Deployment,
    DeploymentConfig,
    DynamicPController,
    ec2_fleet,
)
from repro.sim import DiurnalTrace, arrivals_from_rate_fn


def build(seed: int = 19) -> Deployment:
    return Deployment(
        DeploymentConfig(
            models=ec2_fleet(24),
            p=3,
            dataset_size=2e6,
            seed=seed,
            fixed_overhead=0.015,
        )
    )


def run_day(dep, controller=None, fixed_pq=None, fail_at=None, seed=8):
    trace = DiurnalTrace(base_rate=3.0, period=60.0, peak_to_trough=3.0)
    arrivals = arrivals_from_rate_fn(trace.rate, horizon=60.0, max_rate=6.0, seed=seed)
    rng = random.Random(1)
    failed = False
    for t in arrivals:
        if fail_at is not None and not failed and t >= fail_at:
            victims = rng.sample(sorted(dep.servers), 4)
            for name in victims:
                dep.fail_node(name, t)
            failed = True
            print(f"  !! {len(victims)} nodes failed at t={t:.1f}s: "
                  f"{', '.join(victims)}")
        pq = controller.pq if controller else fixed_pq
        dep.run_query(t, pq)
        if controller:
            controller.step(t)
    return trace, arrivals


def main() -> None:
    target = 0.40

    # --- Adaptive run, with failures mid-day ------------------------------
    print("=== adaptive p, 4 sudden failures at t=30s ===")
    dep = build()
    ctrl = DynamicPController(dep, target_delay=target, window=8,
                              pq_min=3, headroom=0.78)
    run_day(dep, controller=ctrl, fail_at=30.0)
    delays = dep.log.delays()
    met = sum(1 for d in delays if d <= 1.5 * target) / len(delays)
    pqs = [pq for _, pq, _ in ctrl.history]
    print(f"  queries: {len(delays)} (all completed -- yield 100%)")
    print(f"  mean delay: {1000*sum(delays)/len(delays):.0f} ms; "
          f"within 1.5x target: {met:.0%}")
    print(f"  pq ranged {min(pqs)} .. {max(pqs)}")
    elapsed = max(r.finish for r in dep.log.records)
    adaptive_energy = dep.energy(elapsed)
    print(f"  busy energy: {adaptive_energy.busy_joules/1000:.1f} kJ")

    # --- Pinned levels for comparison, same day, no failures ---------------
    pinned = {}
    for pq in (6, 24):
        print(f"\n=== pinned pq = {pq} (no adaptation), failure-free ===")
        dep2 = build()
        run_day(dep2, fixed_pq=pq)
        delays2 = dep2.log.delays()
        elapsed2 = max(r.finish for r in dep2.log.records)
        energy2 = dep2.energy(elapsed2)
        met2 = sum(1 for d in delays2 if d <= 1.5 * target) / len(delays2)
        pinned[pq] = (delays2, energy2, met2)
        print(f"  mean delay: {1000*sum(delays2)/len(delays2):.0f} ms; "
              f"within 1.5x target: {met2:.0%}")
        print(f"  busy energy: {energy2.busy_joules/1000:.1f} kJ")

    print("\nThe trade-off the p-knob controls (one simulated day):")
    for pq in (6, 24):
        d, e, m = pinned[pq]
        print(f"  pinned pq={pq:<2}: mean delay {1000*sum(d)/len(d):>5.0f} ms, "
              f"target met {m:>4.0%}, busy energy {e.busy_joules/1000:>5.0f} kJ")
    print(f"  adaptive    : mean delay {1000*sum(delays)/len(delays):>5.0f} ms, "
          f"target met {met:>4.0%}, busy energy "
          f"{adaptive_energy.busy_joules/1000:>5.0f} kJ"
          " -- and it absorbed 4 sudden node failures mid-day")


if __name__ == "__main__":
    main()
