"""Figs 7.9 / 7.10 -- Range load balancing and its effects.

Paper: starting from ranges mismatched to speeds, the background pairwise
balancer slides boundaries until a node's range is proportional to its
processing power; load imbalance decays over the rounds and query delay
improves accordingly.
"""

import random

from repro.core import Ring
from repro.core.balance import LoadBalancer
from repro.core.scheduler import schedule_heap
from repro.sim import PoissonArrivals, SimServer

from conftest import print_series, run_once

N = 20
P = 4
DATASET = 4e6


def build():
    rng = random.Random(7)
    speeds = [rng.uniform(500_000.0, 3_000_000.0) for _ in range(N)]
    return Ring.uniform(N, speeds=speeds)


def mean_delay(ring):
    servers = {
        n.name: SimServer(n.name, n.speed, fixed_overhead=0.002) for n in ring
    }
    total = 0.0
    arrivals = PoissonArrivals(6.0, seed=12).times(150)
    for qid, now in enumerate(arrivals):
        def est(node, fraction):
            s = servers[node.name]
            return max(0.0, s.busy_until - now) + fraction * DATASET / s.speed

        result = schedule_heap(ring, P, est)
        finish = max(
            servers[node.name].submit(now, DATASET / P) for node in result.assignment
        )
        total += finish - now
    return total / len(arrivals)


def run_experiment():
    ring = build()
    balancer = LoadBalancer(ring)
    progress = []
    delay_before = mean_delay(ring)
    rounds_done = 0
    for round_no in range(60):
        progress.append((round_no, balancer.imbalance()))
        if balancer.step() == 0:
            rounds_done = round_no
            break
    else:
        rounds_done = 60
    progress.append((rounds_done, balancer.imbalance()))
    delay_after = mean_delay(ring)
    return progress, delay_before, delay_after, ring


def test_fig7_9_10_range_balancing(benchmark):
    progress, before, after, ring = run_once(benchmark, run_experiment)
    sampled = progress[:: max(1, len(progress) // 10)]
    print_series(
        "Fig 7.9: load imbalance (range/speed) over balancing rounds",
        ("round", "imbalance"),
        sampled,
    )
    print_series(
        "Fig 7.10: query delay before/after balancing",
        ("state", "mean delay (ms)"),
        [("before", before * 1000), ("after", after * 1000)],
    )

    # Imbalance decays substantially (pairwise hysteresis leaves a ~10%
    # residual band, so global max/mean settles near 1.2-1.3)...
    assert progress[-1][1] < progress[0][1] * 0.75
    # ...to within the hysteresis band of perfect.
    assert progress[-1][1] < 1.35
    # Ranges end up correlated with speeds.
    import statistics

    nodes = ring.nodes()
    ranges = [ring.range_of(n).length for n in nodes]
    speeds = [n.speed for n in nodes]
    corr = statistics.correlation(ranges, speeds)
    assert corr > 0.8
    # And delay does not get worse (usually improves).
    assert after <= before * 1.1
