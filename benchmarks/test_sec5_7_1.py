"""Section 5.7.1 -- Dynamic predicate ordering.

Paper: querying "the xyz" (a wildcard-ish term plus a selective one, AND)
without ordering costs 10s (every item pays the expensive full-match of
"the"); with dynamic ordering the selective predicate runs first and delay
drops to ~1.25s, independent of predicate order in the query.

We reproduce with the Bloom keyword scheme: a term stored in every metadata
("the") and a term stored in none ("xyz"), counting PRF invocations -- the
exact cost the paper profiles (17 hashes for a full match vs ~2 for a
reject).
"""

import random

from repro.pps import MultiPredicateQuery
from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import BloomKeywordScheme

from conftest import print_series, run_once

N_ITEMS = 3_000


def build():
    scheme = BloomKeywordScheme(
        keygen_deterministic("sec5.7.1"), max_words=6, pad_filters=False
    )
    rng = random.Random(0)
    metas = []
    for i in range(N_ITEMS):
        words = ["the", f"filler{rng.randrange(50)}"]
        metas.append(scheme.encrypt_metadata(words))
    return scheme, metas


def run_variant(scheme, metas, order, dynamic):
    q = MultiPredicateQuery(
        [(scheme, scheme.encrypt_query(w)) for w in order],
        op="and",
        dynamic_ordering=dynamic,
        sample_size=225,
    )
    scheme.hash_invocations = 0
    for m in metas:
        q.matches(m)
    return scheme.hash_invocations, q


def run_experiment():
    scheme, metas = build()
    rows = []
    # (label, predicate order, dynamic?)
    variants = [
        ("'the xyz' ordered", ["the", "xyz"], True),
        ("'xyz the' static", ["xyz", "the"], False),
        ("'the xyz' static", ["the", "xyz"], False),
    ]
    results = {}
    for label, order, dynamic in variants:
        cost, q = run_variant(scheme, metas, order, dynamic)
        rows.append((label, cost, cost / N_ITEMS))
        results[label] = cost
    return rows, results


def test_sec5_7_1_dynamic_ordering(benchmark):
    rows, results = run_once(benchmark, run_experiment)
    print_series(
        "Sec 5.7.1: predicate-evaluation cost (PRF invocations)",
        ("variant", "total PRFs", "PRFs/item"),
        rows,
    )

    ordered = results["'the xyz' ordered"]
    good_static = results["'xyz the' static"]
    bad_static = results["'the xyz' static"]

    # The user-unfriendly order without reordering is several times costlier
    # (the paper sees 10s vs 1.25s = 8x).
    assert bad_static > 3.0 * good_static
    # Dynamic ordering rescues the bad order to within ~25% of the good one
    # (it pays the 225-sample learning phase).
    assert ordered < 1.25 * good_static + 225 * 40
