"""Fig 6.1 -- Basic delay comparison: SW vs PTN vs ROAR vs optimal.

Paper: across partitioning levels on a heterogeneous pool, PTN tracks the
optimal bound closely (r^p choices), ROAR sits between PTN and SW, and SW is
clearly worst (only r rotation choices).  ROAR's optimisations close most of
its gap to PTN.
"""

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

N = 90
P_VALUES = (3, 6, 9, 15)
BASE = dict(n_servers=N, dataset_size=1e6, query_rate=12.0, n_queries=500, seed=11)


def run_experiment():
    rows = []
    means = {}
    for p in P_VALUES:
        row = [p]
        for algo in ("opt", "ptn", "roar", "sw"):
            res = run_comparison(ComparisonConfig(algorithm=algo, p=p, **BASE))
            row.append(res.raw_mean_delay * 1000)
            means[(algo, p)] = res.raw_mean_delay
        tuned = run_comparison(
            ComparisonConfig(algorithm="roar", p=p, adjust=True, splits=1, **BASE)
        )
        row.append(tuned.raw_mean_delay * 1000)
        means[("roar+", p)] = tuned.raw_mean_delay
        rows.append(tuple(row))
    return rows, means


def test_fig6_1_delay_comparison(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.1: mean query delay (ms) vs p",
        ("p", "optimal", "PTN", "ROAR", "SW", "ROAR+opts"),
        rows,
    )

    for p in P_VALUES:
        opt, ptn, roar, sw = (
            means[("opt", p)],
            means[("ptn", p)],
            means[("roar", p)],
            means[("sw", p)],
        )
        # The paper's ordering (small tolerance for sampling noise).
        assert opt <= ptn * 1.10, f"p={p}: optimal should lower-bound PTN"
        assert ptn <= roar * 1.10, f"p={p}: PTN should beat basic ROAR"
        assert roar <= sw * 1.10, f"p={p}: ROAR should beat SW"
        # Optimisations close (part of) the gap.
        assert means[("roar+", p)] <= roar * 1.05
