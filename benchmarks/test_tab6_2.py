"""Table 6.2 -- Bandwidth consumption comparison (messages per operation).

Paper: all deterministic algorithms pay r messages per store and p per
query; RAND pays c times more of each; the reconfiguration rows are where
ROAR/SW win -- raising r costs them one replica copy per object (D
messages) and lowering it is free, while PTN's cluster restructuring moves
O(D*n/p^2).  We print the closed-form table and cross-check it against the
*measured* bytes moved by the actual implementations.
"""

import random

from repro.analysis import message_costs
from repro.core.objects import generate_objects
from repro.rendezvous import PTN, RoarAlgorithm, ServerInfo

from conftest import print_series, run_once

N, P, D = 40, 8, 800
OBJ_SIZE = 100


def closed_form_rows():
    rows = []
    for algo in ("roar", "sw", "ptn", "rand"):
        c = message_costs(algo, N, P, D)
        rows.append(
            (algo, c.store_object, c.run_query, c.increase_r, c.decrease_r)
        )
    return rows


def measured_reconfig():
    rng = random.Random(5)
    objects = generate_objects(D, rng, size=OBJ_SIZE)
    servers = [ServerInfo(f"node-{i}", 1.0) for i in range(N)]

    roar = RoarAlgorithm(servers, p=P, rng=random.Random(1))
    roar.place(objects)
    roar_down = roar.change_p(P // 2)  # grow replicas
    roar_up = roar.change_p(P)  # shrink replicas (free)

    ptn = PTN(servers, p=P, rng=random.Random(1))
    ptn.place(objects)
    ptn_down = ptn.change_p(P // 2)
    ptn_up = ptn.change_p(P)
    return roar_down, roar_up, ptn_down, ptn_up


def run_experiment():
    return closed_form_rows(), measured_reconfig()


def test_tab6_2_message_costs(benchmark):
    rows, (roar_down, roar_up, ptn_down, ptn_up) = run_once(
        benchmark, run_experiment
    )
    print_series(
        f"Table 6.2: messages per operation (n={N}, p={P}, D={D})",
        ("algorithm", "store", "query", "increase r", "decrease r"),
        rows,
    )
    print_series(
        "Measured reconfiguration traffic (bytes moved)",
        ("transition", "ROAR", "PTN"),
        [
            (f"p {P} -> {P//2} (more replicas)", roar_down, ptn_down),
            (f"p {P//2} -> {P} (fewer replicas)", roar_up, ptn_up),
        ],
    )

    costs = {r[0]: r for r in rows}
    # Store/query identical for deterministic algorithms; RAND pays 2x.
    assert costs["roar"][1] == costs["ptn"][1] == costs["sw"][1]
    assert costs["rand"][1] == 2 * costs["roar"][1]
    # ROAR reconfiguration is much cheaper than PTN's, both in the model...
    assert costs["roar"][3] < costs["ptn"][3]
    # ...and as measured on the implementations.
    assert roar_down < ptn_down
    # Dropping replicas is free for ROAR, not for PTN.
    assert roar_up == 0
    assert ptn_up > 0
