"""Fig 7.3 -- Average CPU load per node as a function of p.

Paper: at a fixed offered query load, running with a higher partitioning
level makes every node busier -- the fixed per-sub-query overheads are paid
p times per query, which is pure waste (it feeds Table 7.2's energy story).
"""

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

P_VALUES = (5, 10, 20, 47)
RATE = 4.0
N_QUERIES = 120


def run_experiment():
    rows = []
    loads = {}
    for pq in P_VALUES:
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(47), p=5, dataset_size=5e6, seed=9,
                fixed_overhead=0.010,
            )
        )
        arrivals = PoissonArrivals(RATE, seed=4).times(N_QUERIES)
        dep.run_queries(arrivals, pq_fn=pq)
        elapsed = max(r.finish for r in dep.log.records)
        mean_load = dep.mean_cpu_load(elapsed)
        per_node = sorted(dep.per_node_load(elapsed).values())
        loads[pq] = mean_load
        rows.append(
            (pq, mean_load, per_node[0], per_node[len(per_node) // 2], per_node[-1])
        )
    return rows, loads


def test_fig7_3_cpu_load_vs_p(benchmark):
    rows, loads = run_once(benchmark, run_experiment)
    print_series(
        f"Fig 7.3: per-node CPU load at {RATE} queries/s vs pq",
        ("pq", "mean load", "min node", "median node", "max node"),
        rows,
    )

    series = [loads[pq] for pq in P_VALUES]
    # Same offered work, strictly more total CPU burned as p grows.
    assert series == sorted(series)
    assert series[-1] > series[0] * 1.1
