"""Ablation (Section 4.8.3) -- multiple decoupled front-end servers.

The paper argues front-ends can schedule completely decoupled as long as
their statistics are averaged slowly.  We compare one front-end, several
decoupled front-ends (decorrelated rotation choices), and several
front-ends with a perfectly shared backlog view.
"""

import random

from repro.cluster.multifrontend import MultiFrontEndDeployment
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

N, P = 24, 4
RATE = 5.0
N_QUERIES = 300


def speeds():
    rng = random.Random(2)
    return [rng.uniform(300_000.0, 900_000.0) for _ in range(N)]


def run_variant(n_frontends, shared_view):
    dep = MultiFrontEndDeployment(
        speeds(), p=P, n_frontends=n_frontends, shared_view=shared_view, seed=6
    )
    arrivals = PoissonArrivals(RATE, seed=5).times(N_QUERIES)
    log = dep.run(arrivals)
    return {
        "mean": log.raw_mean_delay(),
        "p99": log.percentile_delay(99),
        "divergence": dep.estimate_divergence(),
        "util": dep.utilisation(),
    }


def run_experiment():
    variants = [
        ("1 front-end", 1, False),
        ("3 decoupled", 3, False),
        ("3 shared-view", 3, True),
    ]
    rows = []
    data = {}
    for label, k, shared in variants:
        s = run_variant(k, shared)
        rows.append(
            (label, s["mean"] * 1000, s["p99"] * 1000, s["divergence"], s["util"])
        )
        data[label] = s
    return rows, data


def test_ablation_multifrontend(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    print_series(
        "Front-end ablation: one vs several schedulers",
        ("variant", "mean (ms)", "p99 (ms)", "estimate divergence", "util"),
        rows,
    )

    single = data["1 front-end"]
    decoupled = data["3 decoupled"]
    shared = data["3 shared-view"]
    # Decoupled front-ends keep the system within a small factor of the
    # single/shared schedulers (the paper's viability claim).
    assert decoupled["mean"] < 3.0 * shared["mean"]
    assert decoupled["mean"] < 4.0 * single["mean"]
    # Their speed estimates stay coherent (slow EWMAs).
    assert decoupled["divergence"] < 0.4
