"""Fig 6.8 -- Unavailability comparison for strict operations.

Paper: for queries that must visit *every* object, basic SW is
catastrophically less available (it needs a fully-alive rotation); ROAR with
its failure fall-back matches PTN's availability (an object is lost only
when a full replica group / run dies); multiple rings help further.
"""

from repro.analysis import (
    multiring_unavailability_mc,
    ptn_unavailability,
    roar_unavailability_mc,
    sw_unavailability,
)

from conftest import print_series, run_once

R, P = 4, 8
N = R * P
FAILURE_PROBS = (0.01, 0.05, 0.1, 0.2)


def run_experiment():
    rows = []
    data = {}
    for f in FAILURE_PROBS:
        ptn = ptn_unavailability(f, R, P)
        sw = sw_unavailability(f, R, P)
        roar = roar_unavailability_mc(f, R, N, trials=30_000, seed=41)
        multi = multiring_unavailability_mc(
            f, R, N, k_rings=2, trials=15_000, seed=41
        )
        rows.append((f, ptn, sw, roar, multi))
        data[f] = (ptn, sw, roar, multi)
    return rows, data


def test_fig6_8_strict_unavailability(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.8: strict-operation unavailability vs per-server failure prob",
        ("f", "PTN", "SW (no fallback)", "ROAR (fallback)", "ROAR 2 rings"),
        rows,
    )

    for f in FAILURE_PROBS:
        ptn, sw, roar, multi = data[f]
        # SW is far worse than everything else.
        assert sw > 10 * max(ptn, 1e-12)
        assert sw > 10 * max(roar, 1e-12)
        # ROAR's fall-back keeps it in PTN's league (within an order of
        # magnitude; both are tiny at low f).
        assert roar <= max(10 * ptn, 5e-3)
        # Extra ring never hurts.
        assert multi <= roar + 0.01
    # Unavailability increases with failure probability.
    sw_series = [data[f][1] for f in FAILURE_PROBS]
    assert sw_series == sorted(sw_series)
