"""Fig 7.11 -- Delay breakdown as seen at the front-end server.

Paper: end-to-end query delay decomposes into scheduling (sub-millisecond),
network (sub-millisecond in-datacentre), queueing behind earlier sub-queries,
and the dominant component -- local query execution on the slowest server.
"""

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once


def run_experiment():
    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(24), p=4, dataset_size=5e6, seed=27,
            fixed_overhead=0.004,
        )
    )
    arrivals = PoissonArrivals(6.0, seed=13).times(200)
    dep.run_queries(arrivals, pq_fn=4)
    n = len(dep.breakdowns)
    comp = {
        "scheduling": sum(b.scheduling for b in dep.breakdowns) / n,
        "network": sum(b.network for b in dep.breakdowns) / n,
        "queueing": sum(b.queueing for b in dep.breakdowns) / n,
        "service": sum(b.service for b in dep.breakdowns) / n,
        "total": sum(b.total for b in dep.breakdowns) / n,
    }
    return comp


def test_fig7_11_delay_breakdown(benchmark):
    comp = run_once(benchmark, run_experiment)
    rows = [(k, v * 1000, 100 * v / comp["total"]) for k, v in comp.items()]
    print_series(
        "Fig 7.11: mean delay breakdown at the front-end",
        ("component", "mean (ms)", "% of total"),
        rows,
    )

    # Service time dominates.
    assert comp["service"] > 0.5 * comp["total"]
    # Scheduling is sub-millisecond (real wall-clock of Algorithm 1).
    assert comp["scheduling"] < 0.005
    # Network is sub-millisecond in a data centre.
    assert comp["network"] < 0.002
    # The parts are consistent with the whole (queueing + service bound it).
    assert comp["total"] >= comp["service"]
    assert comp["total"] <= comp["scheduling"] + comp["network"] + comp[
        "queueing"
    ] + comp["service"] + 0.010
