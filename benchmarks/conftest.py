"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md's per-experiment index).  Benchmarks print
the same rows/series the paper reports; EXPERIMENTS.md records the
paper-vs-measured comparison.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro._rng import reset_default_streams


@pytest.fixture(autouse=True)
def _isolated_rng_streams():
    """Benchmarks must be order-independent too (seed-leakage audit).

    Components built without an explicit generator draw fallback streams
    from a process-global counter; without a per-test reset, a benchmark's
    numbers would depend on which benchmarks ran before it.
    """
    reset_default_streams()
    yield


def print_series(title, header, rows):
    """Render one figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4g}".ljust(w))
            else:
                cells.append(str(value).ljust(w))
        print("  ".join(cells))


@pytest.fixture
def series_printer():
    return print_series


def run_once(benchmark, fn):
    """Register *fn* with pytest-benchmark, executing it exactly once.

    Experiment benches measure simulated systems; wall-clock of the whole
    experiment is still interesting (it is the cost of regenerating the
    figure) but repetition adds nothing.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
