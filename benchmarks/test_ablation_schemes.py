"""Ablation (Section 5.5.2) -- Bloom vs Dictionary keyword matching costs.

The two keyword schemes offer the same security with opposite cost profiles:

* Bloom (Goh): metadata ~130 B regardless of dictionary size, but matching
  costs up to 17 PRF applications (about 2-3 on average for non-matches);
  small false-positive rate.
* Dictionary (Chang): matching is a single PRF application and exact, but
  the metadata is as big as the dictionary (32 kB for full English) and the
  dictionary is frozen at setup.

We measure real sizes, real matching wall-clock and real PRF counts.
"""

import random
import time

from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import BloomKeywordScheme, DictionaryKeywordScheme

from conftest import print_series, run_once

N_ITEMS = 600
DICT_SIZES = (64, 512, 2048)
WORDS_PER_DOC = 8


def build_dictionary(size):
    return [f"word{i}" for i in range(size)]


def measure(scheme, vocabulary, rng):
    metas = []
    for _ in range(N_ITEMS):
        metas.append(scheme.encrypt_metadata(rng.sample(vocabulary, WORDS_PER_DOC)))
    query = scheme.encrypt_query(vocabulary[0])
    scheme.hash_invocations = 0
    t0 = time.perf_counter()
    hits = sum(1 for m in metas if scheme.match(m, query))
    elapsed = time.perf_counter() - t0
    return {
        "meta_bytes": metas[0].size_bytes,
        "match_us": elapsed / N_ITEMS * 1e6,
        "prfs_per_item": scheme.hash_invocations / N_ITEMS,
        "hits": hits,
    }


def run_experiment():
    key = keygen_deterministic("ablation-schemes")
    rng = random.Random(4)
    rows = []
    data = {}
    for dict_size in DICT_SIZES:
        vocab = build_dictionary(dict_size)
        bloom = BloomKeywordScheme(key, max_words=WORDS_PER_DOC, pad_filters=False)
        dico = DictionaryKeywordScheme(key, vocab)
        b = measure(bloom, vocab, random.Random(1))
        d = measure(dico, vocab, random.Random(1))
        rows.append(
            (
                dict_size,
                b["meta_bytes"],
                d["meta_bytes"],
                b["prfs_per_item"],
                d["prfs_per_item"],
                b["match_us"],
                d["match_us"],
            )
        )
        data[dict_size] = (b, d)
    return rows, data


def test_ablation_bloom_vs_dictionary(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    print_series(
        "Scheme ablation: Bloom vs Dictionary keyword matching",
        (
            "dict size",
            "bloom meta B",
            "dict meta B",
            "bloom PRFs",
            "dict PRFs",
            "bloom us",
            "dict us",
        ),
        rows,
    )

    for dict_size in DICT_SIZES:
        b, d = data[dict_size]
        # Bloom metadata size is dictionary-independent; Dictionary's grows.
        assert b["meta_bytes"] == data[DICT_SIZES[0]][0]["meta_bytes"]
        assert d["meta_bytes"] >= dict_size // 8
        # Dictionary matches with exactly one PRF; Bloom needs a few.
        assert d["prfs_per_item"] == 1.0
        assert b["prfs_per_item"] > 1.0
        # Same true matches; Bloom may add the odd false positive (its
        # design trade-off), never miss one.
        assert d["hits"] <= b["hits"] <= d["hits"] + 3
    # At large dictionaries the metadata gap is decisive.
    big_b, big_d = data[DICT_SIZES[-1]]
    assert big_d["meta_bytes"] > 5 * big_b["meta_bytes"]
