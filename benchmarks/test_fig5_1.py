"""Fig 5.1 -- Bandwidth: index-based solution vs PPS.

Paper: the index-based approach uses up to ~8x more bandwidth when updates
are remote, and still ~2x more when 90% of updates are local.  We evaluate
the Section 5.3.1 model over the same (fu, fq) grid and locality levels.
"""

from repro.pps import bandwidth_ratio

from conftest import print_series, run_once

FREQS = (1, 10, 100, 500, 1000)
LOCALITIES = (0.0, 0.5, 0.9)


def compute_surface():
    rows = []
    peak = {loc: 0.0 for loc in LOCALITIES}
    for fu in FREQS:
        for fq in FREQS:
            ratios = []
            for loc in LOCALITIES:
                ratio = bandwidth_ratio(fu, fq, loc)
                ratios.append(ratio)
                peak[loc] = max(peak[loc], ratio)
            rows.append((fu, fq, *ratios))
    return rows, peak


def test_fig5_1_bandwidth_ratio_surface(benchmark):
    rows, peak = run_once(benchmark, compute_surface)
    print_series(
        "Fig 5.1: index-based bandwidth / PPS bandwidth",
        ("fu", "fq", "0% local", "50% local", "90% local"),
        rows,
    )
    print(f"peak ratios by locality: {peak}")

    # Shape assertions (paper: ~8x remote, ~2x mostly-local).
    assert 4.0 < peak[0.0] < 12.0
    assert peak[0.9] < peak[0.0]
    assert peak[0.9] > 1.0
    # Locality monotonically shrinks the gap.
    for fu, fq, r0, r50, r90 in rows:
        assert r90 <= r0 + 1e-9
