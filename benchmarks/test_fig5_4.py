"""Fig 5.4 -- Execution traces for queries over a large metadata collection.

Paper: with cold disk caches the I/O thread is the bottleneck (producer and
consumer lines overlay; ~3.9 s for 1M items at ~66 MB/s); with warm caches
the matching thread lags the I/O thread (CPU-bound, ~1.4 s).

We run the real producer/consumer engine over an (intentionally smaller)
collection twice: once with a simulated per-item disk delay sized so I/O is
the bottleneck, once from memory, and compare which side is the laggard.
"""

import random

from repro.pps import MatchEngine, StoredItem
from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import EqualityScheme

from conftest import print_series, run_once

N_ITEMS = 40_000


def build_items():
    key = keygen_deterministic("fig5.4")
    scheme = EqualityScheme(key)
    rng = random.Random(0)
    items = [
        StoredItem(rng.random(), scheme.encrypt_metadata(f"item-{i}"))
        for i in range(N_ITEMS)
    ]
    query = scheme.encrypt_query("no-such-item")  # zero matches, like the paper
    return items, (lambda m: scheme.match(m, query))


def trace_lag(result):
    """Mean (io_count - match_count) gap over the trace, positive = I/O ahead."""
    io_points = [(t.t, t.count) for t in result.trace if t.role == "io"]
    match_points = [(t.t, t.count) for t in result.trace if t.role == "match"]
    if not io_points or not match_points:
        return 0.0
    # At the time of each match sample, how far ahead was the producer?
    gaps = []
    for t, consumed in match_points:
        produced = max((c for tt, c in io_points if tt <= t), default=0)
        gaps.append(produced - consumed)
    return sum(gaps) / len(gaps)


def run_both():
    items, match_fn = build_items()
    engine = MatchEngine(n_threads=1, batch_size=1000, low_memory=False)
    # Calibrate the "disk" to be ~3x slower than matching, like the paper's
    # 66 MB/s disk vs in-memory CPU bound.
    import time

    t0 = time.perf_counter()
    for item in items[:4000]:
        match_fn(item.metadata)
    per_item_match = (time.perf_counter() - t0) / 4000

    disk = engine.run(items, match_fn, io_delay_per_item=3.0 * per_item_match)
    memory = engine.run(items, match_fn, io_delay_per_item=0.0)
    return disk, memory


def test_fig5_4_execution_traces(benchmark):
    disk, memory = run_once(benchmark, run_both)
    rows = [
        ("disk-bound", disk.elapsed, disk.scanned, trace_lag(disk)),
        ("in-memory", memory.elapsed, memory.scanned, trace_lag(memory)),
    ]
    print_series(
        "Fig 5.4: execution trace summary (producer-consumer lag)",
        ("mode", "elapsed (s)", "items", "mean io-match gap"),
        rows,
    )

    assert disk.scanned == N_ITEMS
    assert memory.scanned == N_ITEMS
    # Disk-bound runs are slower end to end...
    assert disk.elapsed > memory.elapsed
    # ...and the producer-consumer gap collapses (matcher waits on I/O),
    # whereas in memory the producer runs ahead of the matcher.
    assert trace_lag(disk) < trace_lag(memory) + N_ITEMS * 0.05
