"""Fig 6.3 -- Variation of query delay with load.

Paper: delays grow with offered load for every algorithm (M/D/1-style
queueing); SW saturates earliest because its r-choice scheduler cannot
spread load as finely, while PTN/ROAR track the optimum until high
utilisation.
"""

import math

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

RATES = (5.0, 15.0, 25.0, 35.0)
BASE = dict(n_servers=90, p=9, dataset_size=1e6, n_queries=500, seed=17)


def run_experiment():
    rows = []
    means = {}
    for rate in RATES:
        row = [rate]
        for algo in ("opt", "ptn", "roar", "sw"):
            res = run_comparison(
                ComparisonConfig(algorithm=algo, query_rate=rate, **BASE)
            )
            delay = res.mean_delay  # inf when exploding, the paper's rule
            row.append(delay * 1000 if math.isfinite(delay) else float("inf"))
            means[(algo, rate)] = delay
        rows.append(tuple(row))
    return rows, means


def test_fig6_3_delay_vs_load(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.3: mean query delay (ms) vs offered load (queries/s)",
        ("rate", "optimal", "PTN", "ROAR", "SW"),
        rows,
    )

    for algo in ("opt", "ptn", "roar", "sw"):
        series = [means[(algo, r)] for r in RATES]
        finite = [d for d in series if math.isfinite(d)]
        # Delay grows with load over the finite range.
        assert finite == sorted(finite), f"{algo}: delay must grow with load"

    # SW saturates first (or is worst) at the highest load.
    top = RATES[-1]
    sw, roar = means[("sw", top)], means[("roar", top)]
    assert (not math.isfinite(sw)) or sw >= roar * 0.9
    # The optimal bound survives the highest load we test.
    assert math.isfinite(means[("opt", RATES[0])])
