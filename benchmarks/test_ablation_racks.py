"""Ablation (Section 4.9.2) -- cross-sectional bandwidth of update traffic.

The paper: PTN can confine each update to l rack crossings by packing a
cluster into l racks; ROAR matches it to within one crossing (l+1) by
assigning ring-consecutive servers to the same rack and forwarding updates
peer-to-peer around the ring.  We measure cross-rack bytes per update for
ring-forwarding under aligned vs scattered placement and against the
backend-push strategy.
"""

import random

from repro.core import Ring, generate_objects
from repro.core.updates import RackLayout, propagate_many

from conftest import print_series, run_once

N, P, RACK = 32, 8, 4
N_UPDATES = 400


def run_experiment():
    ring = Ring.uniform(N)
    rng = random.Random(6)
    objects = generate_objects(N_UPDATES, rng, size=1000)
    aligned = RackLayout(ring, rack_size=RACK, aligned=True)
    striped = RackLayout(ring, rack_size=RACK, aligned=False)

    rows = []
    results = {}
    for label, layout, strategy in (
        ("aligned ring-forward", aligned, "ring-forward"),
        ("striped ring-forward", striped, "ring-forward"),
        ("aligned backend-push", aligned, "backend-push"),
        ("aligned shared-fs", aligned, "shared-fs"),
    ):
        report = propagate_many(ring, layout, objects, P, strategy)
        per_update_cross = report.cross_rack_bytes / N_UPDATES / 1000
        rows.append(
            (
                label,
                report.replicas_written / N_UPDATES,
                per_update_cross,
                report.total_bytes / N_UPDATES / 1000,
            )
        )
        results[label] = per_update_cross
    return rows, results


def test_ablation_rack_placement(benchmark):
    rows, results = run_once(benchmark, run_experiment)
    print_series(
        "Rack ablation: update propagation traffic (KB-copies per update)",
        ("strategy", "replicas/update", "cross-rack copies", "total copies"),
        rows,
    )

    # The replication arc (1/p over n/rack-size racks) spans l ~ r/RACK + 1
    # racks; aligned forwarding crosses ~l times, backend-push crosses once
    # per replica (r ~ 5), shared-fs once more.
    assert results["aligned ring-forward"] < results["striped ring-forward"]
    assert results["aligned ring-forward"] < results["aligned backend-push"]
    assert results["aligned backend-push"] < results["aligned shared-fs"]
    # The headline: aligned ROAR forwarding stays within l+1 ~ 3 crossings.
    assert results["aligned ring-forward"] <= 3.0
