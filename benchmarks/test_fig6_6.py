"""Fig 6.6 -- Increasing pQ and its effect on the algorithms.

Paper: running queries with pq > p lets ROAR split work more finely and pick
better server subsets, cutting delay toward the optimum -- at the price of
more per-sub-query fixed overhead, so with a non-zero fixed cost the curve
bottoms out and turns back up.
"""

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

P = 6
PQ_VALUES = (6, 9, 12, 18, 30)
BASE = dict(
    n_servers=90,
    p=P,
    dataset_size=1e6,
    query_rate=8.0,
    n_queries=400,
    seed=31,
)


def run_experiment():
    rows = []
    no_overhead = {}
    with_overhead = {}
    for pq in PQ_VALUES:
        free = run_comparison(
            ComparisonConfig(algorithm="roar", pq=pq, fixed_overhead=0.0, **BASE)
        )
        paid = run_comparison(
            ComparisonConfig(algorithm="roar", pq=pq, fixed_overhead=0.020, **BASE)
        )
        no_overhead[pq] = free.raw_mean_delay
        with_overhead[pq] = paid.raw_mean_delay
        rows.append((pq, free.raw_mean_delay * 1000, paid.raw_mean_delay * 1000))
    return rows, no_overhead, with_overhead


def test_fig6_6_increasing_pq(benchmark):
    rows, free, paid = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.6: ROAR delay (ms) vs pq (p=6)",
        ("pq", "no fixed overhead", "20ms fixed overhead"),
        rows,
    )

    # Without fixed costs, more partitioning keeps helping.
    assert free[PQ_VALUES[-1]] < free[PQ_VALUES[0]]
    # With fixed costs the benefit saturates: the knee is interior --
    # the largest pq is no longer the best.
    best_pq = min(PQ_VALUES, key=lambda pq: paid[pq])
    assert paid[PQ_VALUES[0]] >= paid[best_pq]
    assert paid[PQ_VALUES[-1]] >= paid[best_pq] * 0.999
    # And at very large pq, overheads visibly eat the gains relative to the
    # overhead-free curve.
    assert paid[PQ_VALUES[-1]] > free[PQ_VALUES[-1]]
