"""Figs 7.1 / 7.2 -- Effect of p on system performance (PPS_LM and PPS_LC).

Paper: raising the query partitioning level cuts query delay (more servers
work in parallel) but raises the per-query fixed overheads, so the maximum
sustainable throughput *falls* with p.  The LM build (higher fixed cost per
sub-query) loses throughput faster than the LC build -- same shape, steeper.

We sweep pq on a 47-node deployment: delay is measured at light load,
saturated throughput by driving the system far past capacity and measuring
the completion rate.
"""

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

P_VALUES = (5, 10, 20, 47)
N = 47
DATASET = 5e6
#: per-sub-query fixed overheads for the two builds: LM pays the forced GC.
FIXED = {"LC": 0.004, "LM": 0.012}


def _config(fixed):
    from repro.core.frontend import FrontEndConfig

    # As deployed: range adjustment and one split enabled (Section 4.8.2).
    return DeploymentConfig(
        models=hen_testbed(N), p=5, dataset_size=DATASET, seed=3,
        fixed_overhead=fixed,
        frontend=FrontEndConfig(adjust_ranges=True, max_splits=1),
    )


def delay_at_light_load(pq, fixed):
    dep = Deployment(_config(fixed))
    arrivals = PoissonArrivals(2.0, seed=1).times(60)
    dep.run_queries(arrivals, pq_fn=pq)
    return dep.log.raw_mean_delay()


def saturated_throughput(pq, fixed):
    dep = Deployment(_config(fixed))
    arrivals = PoissonArrivals(200.0, seed=2).times(250)  # far past capacity
    dep.run_queries(arrivals, pq_fn=pq)
    last_finish = max(r.finish for r in dep.log.records)
    return len(dep.log.records) / last_finish


def run_experiment():
    rows = []
    data = {}
    for pq in P_VALUES:
        row = [pq]
        for build in ("LM", "LC"):
            d = delay_at_light_load(pq, FIXED[build])
            tput = saturated_throughput(pq, FIXED[build])
            row.extend([d * 1000, tput])
            data[(build, pq, "delay")] = d
            data[(build, pq, "tput")] = tput
        rows.append(tuple(row))
    return rows, data


def test_fig7_1_2_p_tradeoff(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    print_series(
        "Figs 7.1/7.2: delay and saturated throughput vs pq",
        ("pq", "LM delay(ms)", "LM tput(q/s)", "LC delay(ms)", "LC tput(q/s)"),
        rows,
    )

    for build in ("LM", "LC"):
        delays = [data[(build, pq, "delay")] for pq in P_VALUES]
        tputs = [data[(build, pq, "tput")] for pq in P_VALUES]
        # Delay falls with p (Section 7.3.1)...
        assert delays[-1] < delays[0]
        # ...throughput falls with p (Section 7.3.2).
        assert tputs[-1] < tputs[0]
    # The high-fixed-cost build loses proportionally more throughput.
    lm_loss = data[("LM", 5, "tput")] / data[("LM", 47, "tput")]
    lc_loss = data[("LC", 5, "tput")] / data[("LC", 47, "tput")]
    assert lm_loss > lc_loss
