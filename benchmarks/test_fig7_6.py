"""Fig 7.6 -- Effects of 20 node failures on ROAR.

Paper: 20 of the nodes are killed mid-run.  The failure fall-back keeps
answering every query with full harvest immediately (sub-queries aimed at
dead ranges split onto live neighbours); delay blips while timers fire and
the extra sub-queries land on survivors, then settles at the reduced
capacity's level.  No queries are lost.
"""

import random

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

N = 47
KILL = 20
RATE = 4.0
FAIL_AT = 8.0


def run_experiment():
    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(N), p=5, dataset_size=5e6, seed=33,
            store_objects=True, n_objects_stored=800, failure_timeout=0.25,
        )
    )
    arrivals = PoissonArrivals(RATE, seed=9).times(int(RATE * 24))
    rng = random.Random(44)
    victims = rng.sample(sorted(dep.servers), KILL)
    failed = False
    for t in arrivals:
        if not failed and t >= FAIL_AT:
            for name in victims:
                dep.fail_node(name, FAIL_AT)
            failed = True
        dep.run_query(t, 5)

    phases = {
        "before": [r for r in dep.log.records if r.arrival < FAIL_AT],
        "blip (2s)": [
            r for r in dep.log.records if FAIL_AT <= r.arrival < FAIL_AT + 2.0
        ],
        "after": [r for r in dep.log.records if r.arrival >= FAIL_AT + 2.0],
    }
    rows = [
        (
            name,
            len(recs),
            1000 * sum(r.delay for r in recs) / len(recs),
            sum(r.subqueries for r in recs) / len(recs),
        )
        for name, recs in phases.items()
        if recs
    ]
    return rows, phases, dep, len(arrivals)


def test_fig7_6_twenty_failures(benchmark):
    rows, phases, dep, offered = run_once(benchmark, run_experiment)
    print_series(
        f"Fig 7.6: {KILL}/{N} nodes fail at t={FAIL_AT}s",
        ("phase", "queries", "mean delay (ms)", "mean sub-queries"),
        rows,
    )

    # Zero lost queries: yield stays 100%.
    assert len(dep.log.records) == offered
    mean = lambda recs: sum(r.delay for r in recs) / len(recs)
    before, after = mean(phases["before"]), mean(phases["after"])
    # Reduced capacity and replacement sub-queries cost something...
    assert after >= before * 0.8
    # ...but the system keeps answering within the same order of magnitude.
    assert after < before * 10
    # The blip phase (failure detection timers) is the worst.
    if phases["blip (2s)"]:
        assert mean(phases["blip (2s)"]) >= before
