"""Fig 5.7 -- PPS scaling on slower hardware (Sun X4100), PPS_LM vs PPS_LC.

Paper: the same delay/throughput shapes hold on the slower box; the
low-memory build (forced GC after each query) has visibly higher fixed costs,
so its throughput drop-off at small collections is steeper than the
low-CPU build's.

We run the real engine with ``low_memory`` on and off across collection
sizes and compare the fixed-cost gap.
"""

import random

from repro.pps import MatchEngine, StoredItem
from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import EqualityScheme

from conftest import print_series, run_once

SIZES = (500, 2_000, 8_000, 32_000)


def build(n):
    scheme = EqualityScheme(keygen_deterministic("fig5.7"))
    rng = random.Random(2)
    items = [
        StoredItem(rng.random(), scheme.encrypt_metadata(f"item-{i}"))
        for i in range(n)
    ]
    query = scheme.encrypt_query("absent")
    return items, (lambda m: scheme.match(m, query))


def median_elapsed(engine, items, match_fn, repeats=3):
    runs = sorted(engine.run(items, match_fn).elapsed for _ in range(repeats))
    return runs[len(runs) // 2]


def run_experiment():
    items_all, match_fn = build(max(SIZES))
    lm = MatchEngine(n_threads=1, batch_size=500, low_memory=True)
    lc = MatchEngine(n_threads=1, batch_size=500, low_memory=False)
    rows = []
    for n in SIZES:
        subset = items_all[:n]
        t_lm = median_elapsed(lm, subset, match_fn)
        t_lc = median_elapsed(lc, subset, match_fn)
        rows.append((n, t_lm, t_lc, n / t_lm, n / t_lc))
    return rows


def test_fig5_7_lm_vs_lc(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_series(
        "Fig 5.7: PPS_LM vs PPS_LC across collection sizes",
        ("items", "LM delay (s)", "LC delay (s)", "LM items/s", "LC items/s"),
        rows,
    )

    # LM pays the GC after every query: slower at every size, and the gap
    # is proportionally worst at the smallest collection (fixed cost).
    lm_overhead_small = rows[0][1] - rows[0][2]
    lm_overhead_rel_small = lm_overhead_small / rows[0][2]
    lm_overhead_rel_big = (rows[-1][1] - rows[-1][2]) / rows[-1][2]
    assert lm_overhead_small > 0, "forced GC should cost something"
    assert lm_overhead_rel_small > lm_overhead_rel_big - 0.05

    # Both builds converge to similar asymptotic throughput.
    assert rows[-1][3] == rows[-1][3]  # sanity
    assert abs(rows[-1][3] - rows[-1][4]) / rows[-1][4] < 0.5
