"""Ablation (Section 4.8.4) -- TCP incast and the min-RTO fix.

Not a numbered figure, but a design choice the paper motivates at length:
at large p, synchronized sub-query replies overflow the front-end's switch
buffer and standard TCP stalls for min-RTO (200 ms) per loss round; cutting
the min RTO to a few ms makes the problem vanish.  We sweep p through the
incast threshold for both settings.
"""

from repro.sim.transport import IncastModel, TransportConfig

from conftest import print_series, run_once

P_VALUES = (8, 32, 128, 512, 1000)


def run_experiment():
    standard = IncastModel(TransportConfig(min_rto=0.200))
    reduced = IncastModel(TransportConfig(min_rto=0.002))
    rows = []
    data = {}
    for p in P_VALUES:
        t_std = standard.mean_collection_time(p)
        t_red = reduced.mean_collection_time(p)
        losses = standard.collect(p).packets_lost
        rows.append((p, t_std * 1000, t_red * 1000, losses))
        data[p] = (t_std, t_red)
    return rows, data, standard.incast_threshold()


def test_ablation_incast_min_rto(benchmark):
    rows, data, threshold = run_once(benchmark, run_experiment)
    print_series(
        "Incast ablation: reply collection time vs p",
        ("p", "200ms min-RTO (ms)", "2ms min-RTO (ms)", "packets lost"),
        rows,
    )
    print(f"incast threshold (largest loss-free p): {threshold}")

    # Below the threshold both settings are equivalent and fast.
    small = P_VALUES[0]
    assert data[small][0] == data[small][1]
    assert data[small][0] < 0.01
    # Beyond it, standard TCP pays hundreds of ms; the fix stays in ms.
    big = P_VALUES[-1]
    assert big > threshold
    assert data[big][0] > 0.2
    assert data[big][1] < data[big][0] / 5
