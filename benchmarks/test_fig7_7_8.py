"""Figs 7.7 / 7.8 -- Fast load balancing with pq > p (sub-query splitting).

Paper: when node ranges are badly matched to node speeds (e.g. right after
slow machines join, before background range balancing converges), waiting
for range balancing is slow.  Splitting sub-queries (each half-size piece
can run on any of the ~r servers holding it, Section 4.8.2) immediately
sheds work from overloaded nodes onto fast ones, cutting both the mean and
the spread of the delay distribution.
"""

import random

from repro.core import FrontEnd, FrontEndConfig, Ring
from repro.sim import DelayLog, PoissonArrivals, QueryRecord, SimServer
from repro.sim.tracing import percentile

from conftest import print_series, run_once

N = 24
P = 4
DATASET = 4e6
RATE = 3.0


def build_unbalanced():
    """Equal ranges but very unequal speeds -- the worst case for ROAR."""
    rng = random.Random(3)
    speeds = [rng.choice([600_000.0, 3_000_000.0]) for _ in range(N)]
    ring = Ring.uniform(N, speeds=speeds)
    servers = {
        n.name: SimServer(n.name, n.speed, fixed_overhead=0.003) for n in ring
    }
    return ring, servers


def run_at(max_splits):
    ring, servers = build_unbalanced()
    frontend = FrontEnd(
        ring,
        DATASET,
        FrontEndConfig(
            adjust_ranges=max_splits > 0,
            max_splits=max_splits,
            fixed_overhead=0.003,
        ),
        rng=random.Random(5),
    )
    log = DelayLog()
    for now in PoissonArrivals(RATE, seed=10).times(250):
        for node in ring:
            frontend.stats_for(node).busy_until = servers[node.name].busy_until
        qid, plan, _ = frontend.schedule_query(now, P)
        finish = now
        for sub in plan.subs:
            server = servers[sub.node.name]
            f = server.submit(now, sub.width * DATASET, query_id=qid)
            frontend.observe_completion(
                node=sub.node,
                work_objects=sub.width * DATASET,
                service_time=server.service_time(sub.width * DATASET),
                now=f,
            )
            finish = max(finish, f)
        log.add(QueryRecord(qid, now, finish, pq=len(plan.subs)))
    delays = log.delays()
    return {
        "mean": sum(delays) / len(delays),
        "p50": percentile(delays, 50),
        "p95": percentile(delays, 95),
        "p99": percentile(delays, 99),
        "spread": percentile(delays, 95) / percentile(delays, 50),
        "mean_subs": sum(r.pq for r in log.records) / len(log.records),
    }


def run_experiment():
    return {k: run_at(k) for k in (0, 1, 4)}


def test_fig7_7_8_fast_balancing_with_splits(benchmark):
    stats = run_once(benchmark, run_experiment)
    rows = [
        (
            k,
            s["mean_subs"],
            s["mean"] * 1000,
            s["p50"] * 1000,
            s["p95"] * 1000,
            s["spread"],
        )
        for k, s in stats.items()
    ]
    print_series(
        "Figs 7.7/7.8: delay distribution on an unbalanced ring vs splitting",
        ("max splits", "mean subqueries", "mean (ms)", "p50 (ms)", "p95 (ms)", "p95/p50"),
        rows,
    )

    base, one, four = stats[0], stats[1], stats[4]
    # Splitting sheds the slow nodes' work: mean improves...
    assert one["mean"] < base["mean"]
    assert four["mean"] <= one["mean"] * 1.1
    # ...and the tail tightens (Fig 7.8's distribution shift).
    assert one["p95"] < base["p95"]
    assert four["p95"] <= base["p95"]
    # A large share of the benefit comes from the first split (Section
    # 4.8.2: "most of the benefits come from splitting a single sub-query").
    gain_one = base["mean"] - one["mean"]
    gain_four = base["mean"] - four["mean"]
    assert gain_one > 0.35 * gain_four
