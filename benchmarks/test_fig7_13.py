"""Fig 7.13 -- Observed server processing speeds.

Paper: the front-end's EWMA speed estimates, learned purely from sub-query
completions, separate the server generations cleanly -- the observed speeds
cluster by hardware model.  We start the front-end with badly perturbed
estimates and verify the learned values converge to each model's true speed.
"""

import random

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once


def run_experiment():
    models = hen_testbed(24)
    dep = Deployment(
        DeploymentConfig(models=models, p=4, dataset_size=5e6, seed=35)
    )
    # Start from estimates off by up to +-60%.
    dep.frontend.perturb_speed_estimates(0.6, rng=random.Random(1))
    initial_err = _mean_rel_error(dep)
    arrivals = PoissonArrivals(8.0, seed=14).times(400)
    dep.run_queries(arrivals, pq_fn=8)
    final_err = _mean_rel_error(dep)

    by_model = {}
    for ring in dep.rings:
        for node in ring:
            model = dep.model_of[node.name]
            est = dep.frontend.stats[node.name].speed_estimate
            by_model.setdefault(model, []).append((node.speed, est))
    rows = []
    for model, pairs in sorted(by_model.items()):
        true_mean = sum(t for t, _ in pairs) / len(pairs)
        est_mean = sum(e for _, e in pairs) / len(pairs)
        rows.append((model, len(pairs), true_mean, est_mean, est_mean / true_mean))
    return rows, initial_err, final_err, by_model


def _mean_rel_error(dep):
    errs = []
    for ring in dep.rings:
        for node in ring:
            est = dep.frontend.stats[node.name].speed_estimate
            errs.append(abs(est - node.speed) / node.speed)
    return sum(errs) / len(errs)


def test_fig7_13_observed_speeds(benchmark):
    rows, initial_err, final_err, by_model = run_once(benchmark, run_experiment)
    print_series(
        "Fig 7.13: learned vs true processing speeds by server model",
        ("model", "nodes", "true mean", "EWMA estimate", "ratio"),
        rows,
    )
    print(f"mean relative estimate error: {initial_err:.2%} -> {final_err:.2%}")

    # Learning shrinks the estimation error substantially.
    assert final_err < initial_err * 0.6
    # Models remain separable by their learned speeds: every queried node's
    # estimate is within 30% of truth.
    assert final_err < 0.30
