"""Table 7.3 -- ROAR performance running on 1000 servers (EC2).

Paper: a 1000-instance EC2 deployment answered queries over the full
dataset with sub-second delays and the front-end scheduler handled the
scale (scheduling cost stayed in the tens of milliseconds).  We run the
full deployment at n=1000 and report the same rows: mean/median/p99 delay,
scheduling cost, and sustained throughput.
"""

from repro.cluster import Deployment, DeploymentConfig, ec2_fleet
from repro.sim import PoissonArrivals
from repro.sim.tracing import percentile

from conftest import print_series, run_once

N = 1000
P = 100
DATASET = 20e6  # 20M metadata spread over the fleet


def run_experiment():
    dep = Deployment(
        DeploymentConfig(
            models=ec2_fleet(N), p=P, dataset_size=DATASET, seed=51,
            fixed_overhead=0.005,
        )
    )
    arrivals = PoissonArrivals(10.0, seed=15).times(150)
    dep.run_queries(arrivals, pq_fn=P)
    delays = dep.log.delays()
    sched = dep.scheduling_wallclock / len(delays)
    last = max(r.finish for r in dep.log.records)
    return {
        "n": N,
        "p": P,
        "mean": sum(delays) / len(delays),
        "median": percentile(delays, 50),
        "p99": percentile(delays, 99),
        "sched_ms": sched * 1000,
        "throughput": len(delays) / last,
    }


def test_tab7_3_thousand_servers(benchmark):
    stats = run_once(benchmark, run_experiment)
    print_series(
        "Table 7.3: ROAR on 1000 simulated EC2 servers",
        ("metric", "value"),
        [
            ("servers", stats["n"]),
            ("partitioning level", stats["p"]),
            ("mean delay (ms)", stats["mean"] * 1000),
            ("median delay (ms)", stats["median"] * 1000),
            ("p99 delay (ms)", stats["p99"] * 1000),
            ("scheduling per query (ms)", stats["sched_ms"]),
            ("throughput (q/s)", stats["throughput"]),
        ],
    )

    # Sub-second delays at the kilonode scale.
    assert stats["mean"] < 1.0
    assert stats["p99"] < 2.0
    # One front-end schedules a 1000-node ring in tens of ms at most.
    assert stats["sched_ms"] < 100.0
    # The run sustained the offered rate (not exploding).
    assert not dep_exploding(stats)


def dep_exploding(stats):
    return stats["throughput"] < 5.0
