"""Closed-loop elasticity under a flash crowd (control-plane benchmark).

Beyond-paper scenario built from Section 4.5/4.9's machinery: a 4x query
surge hits a comfortable 16-server deployment; the SLO elasticity and
re-partitioning controllers react through live metrics.  The assertion is
the whole point of the control plane: tail latency blows through the SLO
during the crowd and *recovers after adaptation*.
"""

from conftest import print_series

from repro.control import ScenarioConfig, run_scenario


def run_flash_crowd():
    return run_scenario(
        ScenarioConfig(
            scenario="flash-crowd",
            n_servers=16,
            p0=4,
            duration=240.0,
            slo_p99=1.0,
            seed=1,
        )
    )


def test_flash_crowd_p99_recovers(once, series_printer):
    report = once(run_flash_crowd)

    series_printer(
        "Closed loop: flash crowd, SLO p99 = 1000 ms",
        ["phase", "p99 (ms)"],
        [
            ("before", report.p99_before * 1000),
            ("crisis", report.p99_crisis * 1000),
            ("after", report.p99_after * 1000),
        ],
    )
    series_printer(
        "Control timeline (every 5th tick)",
        ["t (s)", "pq", "p_store", "servers"],
        [t for i, t in enumerate(report.timeline) if i % 5 == 0],
    )

    # The controller acted at least once mid-run (p and the server set).
    assert report.adapted
    kinds = {a.kind for a in report.actions}
    assert "add_server" in kinds
    assert "request_p" in kinds

    # The crowd hurt: tail latency blew through the SLO.
    assert report.p99_crisis > report.config.slo_p99

    # Adaptation worked: p99 recovered after the controller reacted --
    # back under the SLO, far below the crisis tail.
    assert report.p99_after < 0.25 * report.p99_crisis
    assert report.p99_after <= report.config.slo_p99
    # and no query was dropped along the way
    assert report.log.yield_fraction() == 1.0
