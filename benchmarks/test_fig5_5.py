"""Fig 5.5 -- Query delay with in-memory data vs number of matching threads.

Paper: near-linear speedup up to 4 threads (one per core on the Dell 1950,
400 ms for 1M items), then a plateau / slight degradation from locking and
scheduling costs.

Substitution note (DESIGN.md): CPython's GIL serialises small-buffer HMAC
work, so *real* threads cannot reproduce the speedup; we measure the real
single-thread matching rate and drive the paper's own cost model (perfect
scaling to the core count, then a lock-contention penalty) -- the same model
the cluster simulator uses.  Real threaded runs are included to document the
GIL-bound behaviour.
"""

import random
import time

from repro.pps import MatchEngine, StoredItem
from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import EqualityScheme

from conftest import print_series, run_once

N_ITEMS = 30_000
CORES = 4
LOCK_PENALTY = 0.06  # per extra thread beyond the core count


def build():
    scheme = EqualityScheme(keygen_deterministic("fig5.5"))
    rng = random.Random(0)
    items = [
        StoredItem(rng.random(), scheme.encrypt_metadata(f"item-{i}"))
        for i in range(N_ITEMS)
    ]
    query = scheme.encrypt_query("absent")
    return items, (lambda m: scheme.match(m, query))


def run_experiment():
    items, match_fn = build()
    engine = MatchEngine(n_threads=1, batch_size=1000, low_memory=False)
    base = engine.run(items, match_fn).elapsed

    rows = []
    for threads in (1, 2, 3, 4, 6, 8):
        # Paper's cost model: linear to the core count, then contention.
        effective = min(threads, CORES)
        modelled = base / effective
        if threads > CORES:
            modelled *= 1.0 + LOCK_PENALTY * (threads - CORES)
        real = MatchEngine(
            n_threads=threads, batch_size=1000, low_memory=False
        ).run(items, match_fn).elapsed
        rows.append((threads, modelled, real))
    return base, rows


def test_fig5_5_thread_scaling(benchmark):
    base, rows = run_once(benchmark, run_experiment)
    print_series(
        "Fig 5.5: in-memory query delay vs matching threads",
        ("threads", "model delay (s)", "real GIL-bound (s)"),
        rows,
    )

    modelled = {t: m for t, m, _ in rows}
    # Linear speedup to the core count...
    assert modelled[2] < 0.6 * modelled[1]
    assert modelled[4] < 0.3 * modelled[1]
    # ...then a plateau (more threads do not help).
    assert modelled[8] >= modelled[4]
    # Real threads stay within 3x of single-thread (GIL, documented).
    reals = [r for _, _, r in rows]
    assert max(reals) < 4.0 * min(reals)
