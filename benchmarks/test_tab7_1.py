"""Table 7.1 -- Server models used in the experimental evaluation.

Prints the hardware catalogue (calibrated to the paper's own Section 5.7
throughput measurements) and checks the relative speed ordering that the
heterogeneity experiments depend on.
"""

from repro.cluster import MODEL_CATALOGUE, hen_testbed

from conftest import print_series, run_once


def collect():
    rows = []
    for name, model in MODEL_CATALOGUE.items():
        rows.append(
            (
                name,
                model.cores,
                model.match_rate,
                model.disk_rate,
                model.fixed_overhead * 1000,
                model.power.idle_watts,
                model.power.busy_watts,
            )
        )
    pool = hen_testbed(47)
    counts = {}
    for m in pool:
        counts[m.name] = counts.get(m.name, 0) + 1
    return rows, counts


def test_tab7_1_server_models(benchmark):
    rows, counts = run_once(benchmark, collect)
    print_series(
        "Table 7.1: server model catalogue",
        ("model", "cores", "match/s/thread", "disk items/s", "fixed (ms)", "idle W", "busy W"),
        rows,
    )
    print(f"Hen-style 47-node pool composition: {counts}")

    speeds = {name: m.speed(True) for name, m in MODEL_CATALOGUE.items()}
    assert speeds["dell-2950"] > speeds["dell-1950"] > speeds["dell-1850"] > speeds["sun-x4100"]
    # The pool is genuinely mixed and totals 47.
    assert sum(counts.values()) == 47
    assert len(counts) >= 3
    # Speed spread is the several-fold gap the paper's Fig 7.13 shows.
    ratio = speeds["dell-2950"] / speeds["sun-x4100"]
    assert 2.0 < ratio < 12.0
