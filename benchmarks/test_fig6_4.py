"""Fig 6.4 -- Variation of query delay with server heterogeneity.

Paper: with identical servers all algorithms coincide; as speed variance
grows, SW degrades sharply (it cannot pick fast servers -- only r rotation
choices) while PTN and ROAR exploit the fast servers and stay near the
optimum.  The gap between SW and the rest *widens* with heterogeneity.
"""

import random

from repro.cluster import ComparisonConfig, heterogeneous_speeds, run_comparison

from conftest import print_series, run_once

HETEROGENEITY = (0.0, 0.3, 0.6, 0.9)
BASE = dict(n_servers=90, p=9, dataset_size=1e6, query_rate=12.0, n_queries=500)


def run_experiment():
    rows = []
    means = {}
    for h in HETEROGENEITY:
        speeds = heterogeneous_speeds(90, h, random.Random(23), mean=500_000.0)
        row = [h]
        for algo in ("opt", "ptn", "roar", "sw"):
            res = run_comparison(
                ComparisonConfig(algorithm=algo, speeds=speeds, seed=23, **BASE)
            )
            row.append(res.raw_mean_delay * 1000)
            means[(algo, h)] = res.raw_mean_delay
        rows.append(tuple(row))
    return rows, means


def test_fig6_4_delay_vs_heterogeneity(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.4: mean query delay (ms) vs heterogeneity",
        ("h", "optimal", "PTN", "ROAR", "SW"),
        rows,
    )

    # Identical servers: everybody within a few percent of the optimum.
    h0 = HETEROGENEITY[0]
    for algo in ("ptn", "roar", "sw"):
        assert means[(algo, h0)] <= means[("opt", h0)] * 1.15

    # The SW-to-PTN gap widens with heterogeneity.
    gap = lambda h: means[("sw", h)] / means[("ptn", h)]
    assert gap(HETEROGENEITY[-1]) > gap(HETEROGENEITY[0]) * 1.1

    # ROAR stays between PTN and SW at high heterogeneity.
    h_hi = HETEROGENEITY[-1]
    assert means[("ptn", h_hi)] <= means[("roar", h_hi)] * 1.1
    assert means[("roar", h_hi)] <= means[("sw", h_hi)] * 1.1
