"""Fig 6.5 -- Algorithm performance with server-speed estimation errors.

Paper: the schedulers rely on processing-speed estimates; injecting
estimation error degrades delay only gracefully (the EWMA feedback loop and
queue-aware estimates absorb moderate error), with PTN and ROAR affected
similarly.
"""

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

ERRORS = (0.0, 0.25, 0.5, 1.0)
BASE = dict(n_servers=90, p=9, dataset_size=1e6, query_rate=12.0, n_queries=500, seed=29)


def run_experiment():
    rows = []
    means = {}
    for err in ERRORS:
        row = [err]
        for algo in ("ptn", "roar"):
            res = run_comparison(
                ComparisonConfig(algorithm=algo, speed_error=err, **BASE)
            )
            row.append(res.raw_mean_delay * 1000)
            means[(algo, err)] = res.raw_mean_delay
        rows.append(tuple(row))
    return rows, means


def test_fig6_5_estimation_error(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.5: mean query delay (ms) vs relative speed-estimation error",
        ("error", "PTN", "ROAR"),
        rows,
    )

    for algo in ("ptn", "roar"):
        perfect = means[(algo, 0.0)]
        worst = means[(algo, 1.0)]
        # Error hurts...
        assert worst >= perfect * 0.95
        # ...but degradation is graceful: under 2.5x even at 100% error.
        assert worst <= perfect * 2.5, (
            f"{algo}: estimation error should degrade gracefully "
            f"({perfect*1000:.1f} -> {worst*1000:.1f} ms)"
        )
