"""Fig 7.5 -- ROAR changing p dynamically.

Paper: under a load that swings 2-4x diurnally, the controller raises the
query partitioning level at the peak to keep delay under target and lowers
it in the trough to claw back efficiency -- all without stopping the system.
Delay spikes transiently while the controller chases a rising load, then
settles (the same transient appears in the paper's figure).

We run two compressed "days" and report the second (the first warms the
controller up).
"""

from repro.cluster import Deployment, DeploymentConfig, DynamicPController, ec2_fleet
from repro.sim import DiurnalTrace, arrivals_from_rate_fn

from conftest import print_series, run_once

TARGET = 0.40  # seconds
PERIOD = 60.0  # compressed "day"
BASE_RATE = 3.2
HORIZON = 2 * PERIOD


def run_experiment():
    dep = Deployment(
        DeploymentConfig(
            models=ec2_fleet(24), p=3, dataset_size=2e6, seed=19,
            fixed_overhead=0.005,
        )
    )
    ctrl = DynamicPController(
        dep, target_delay=TARGET, window=8, pq_min=3, headroom=0.78
    )
    trace = DiurnalTrace(base_rate=BASE_RATE, period=PERIOD, peak_to_trough=3.0)
    arrivals = arrivals_from_rate_fn(
        trace.rate, horizon=HORIZON, max_rate=BASE_RATE * 2.0, seed=8
    )
    for t in arrivals:
        dep.run_query(t, ctrl.pq)
        ctrl.step(t)

    # Summarise the second period in eighths.
    samples = []
    for k in range(8):
        lo = PERIOD + k * PERIOD / 8
        hi = PERIOD + (k + 1) * PERIOD / 8
        recs = [r for r in dep.log.records if lo <= r.arrival < hi]
        pqs = [pq for (tt, pq, _) in ctrl.history if lo <= tt < hi]
        if not recs or not pqs:
            continue
        samples.append(
            (
                f"{lo:.0f}-{hi:.0f}s",
                trace.rate((lo + hi) / 2),
                sum(pqs) / len(pqs),
                1000 * sum(r.delay for r in recs) / len(recs),
                sum(1 for r in recs if r.delay <= 1.5 * TARGET) / len(recs),
            )
        )
    return samples, dep, ctrl


def test_fig7_5_dynamic_p(benchmark):
    samples, dep, ctrl = run_once(benchmark, run_experiment)
    print_series(
        "Fig 7.5: dynamic pq tracking a diurnal load (target 400 ms)",
        ("window", "offered rate", "mean pq", "mean delay (ms)", "frac <= 1.5x target"),
        samples,
    )

    rates = [s[1] for s in samples]
    pqs = [s[2] for s in samples]
    peak_idx = rates.index(max(rates))
    trough_idx = rates.index(min(rates))
    # pq rises toward the peak and falls back in the trough.
    assert pqs[peak_idx] > pqs[trough_idx]
    # pq never dropped below the stored partitioning level.
    assert all(pq >= 3 for _, pq, _ in ctrl.history)
    # Away from the peak transient, the delay target is met.
    second_period = [r for r in dep.log.records if r.arrival >= PERIOD]
    ok = sum(1 for r in second_period if r.delay <= 2.0 * TARGET)
    assert ok / len(second_period) > 0.55
    # The trough windows themselves comfortably meet the target.
    assert samples[trough_idx][4] >= 0.9
