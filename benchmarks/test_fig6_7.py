"""Fig 6.7 -- Effects of ROAR's mechanisms on performance (ablation).

Paper: each mechanism contributes -- the deterministic rotation sweep beats
random starting points; range adjustment shaves the slowest sub-query
(most effective at low replication); splitting the slowest sub-query
captures most of the remaining gap; a second ring multiplies scheduling
choices.  Together they carry basic ROAR most of the way to PTN.
"""

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

BASE = dict(
    n_servers=90, p=9, dataset_size=1e6, query_rate=12.0, n_queries=500, seed=37
)

VARIANTS = [
    ("random-3 starts", dict(algorithm="roar", scheduler="random", random_starts=3)),
    ("basic sweep", dict(algorithm="roar")),
    ("+range adjust", dict(algorithm="roar", adjust=True)),
    ("+1 split", dict(algorithm="roar", splits=1)),
    ("+adjust+split", dict(algorithm="roar", adjust=True, splits=1)),
    ("2 rings +both", dict(algorithm="roar2", adjust=True, splits=1)),
    ("PTN (reference)", dict(algorithm="ptn")),
]


def run_experiment():
    rows = []
    means = {}
    for label, kw in VARIANTS:
        res = run_comparison(ComparisonConfig(**BASE, **kw))
        rows.append((label, res.raw_mean_delay * 1000, res.p99_delay * 1000))
        means[label] = res.raw_mean_delay
    return rows, means


def test_fig6_7_mechanism_ablation(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.7: ROAR mechanism ablation (mean / p99 delay, ms)",
        ("variant", "mean", "p99"),
        rows,
    )

    # The deterministic sweep beats a few random starts.
    assert means["basic sweep"] <= means["random-3 starts"] * 1.02
    # Each optimisation helps (or at worst is neutral).
    assert means["+range adjust"] <= means["basic sweep"] * 1.02
    assert means["+1 split"] <= means["basic sweep"] * 1.02
    assert means["+adjust+split"] <= means["+range adjust"] * 1.02
    # The full stack approaches PTN: within 2x (paper: close).
    assert means["2 rings +both"] <= means["basic sweep"]
    assert means["2 rings +both"] <= 2.0 * means["PTN (reference)"]
