"""Fig 5.6 -- PPS performance scaling with file collection size (Dell 1950).

Paper, left panel: query delay grows linearly with collection size for both
disk-bound and in-memory processing (log-log parallel lines, in-memory ~10x
faster).  Right panel: processing speed (items/s) is low for small
collections (fixed costs dominate) and levels off around 100k-250k items.

We measure the real matching engine at several collection sizes with a fixed
per-query overhead, both from "disk" (simulated stream delay) and memory.
"""

import random

from repro.pps import MatchEngine, StoredItem
from repro.pps.crypto import keygen_deterministic
from repro.pps.schemes import EqualityScheme

from conftest import print_series, run_once

SIZES = (1_000, 4_000, 16_000, 64_000)
FIXED_COST = 0.008  # per-query fixed costs (connection, threads, parsing)
DISK_DELAY_FACTOR = 3.0


def build(n):
    scheme = EqualityScheme(keygen_deterministic("fig5.6"))
    rng = random.Random(1)
    items = [
        StoredItem(rng.random(), scheme.encrypt_metadata(f"item-{i}"))
        for i in range(n)
    ]
    query = scheme.encrypt_query("absent")
    return items, (lambda m: scheme.match(m, query))


def run_experiment():
    import time

    items_all, match_fn = build(max(SIZES))
    engine = MatchEngine(n_threads=1, batch_size=1000, low_memory=False)

    t0 = time.perf_counter()
    for item in items_all[:4000]:
        match_fn(item.metadata)
    per_item = (time.perf_counter() - t0) / 4000

    rows = []
    for n in SIZES:
        subset = items_all[:n]
        mem = engine.run(subset, match_fn).elapsed + FIXED_COST
        disk = (
            engine.run(
                subset, match_fn, io_delay_per_item=DISK_DELAY_FACTOR * per_item
            ).elapsed
            + FIXED_COST
        )
        rows.append((n, disk, mem, n / disk, n / mem))
    return rows


def test_fig5_6_collection_scaling(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_series(
        "Fig 5.6: delay and processing speed vs collection size",
        ("items", "disk delay (s)", "mem delay (s)", "disk items/s", "mem items/s"),
        rows,
    )

    sizes = [r[0] for r in rows]
    disk_delays = [r[1] for r in rows]
    mem_delays = [r[2] for r in rows]
    disk_speed = [r[3] for r in rows]
    mem_speed = [r[4] for r in rows]

    # Delay grows monotonically, roughly linearly at the top end.
    assert disk_delays == sorted(disk_delays)
    assert mem_delays == sorted(mem_delays)
    big_ratio = disk_delays[-1] / disk_delays[-2]
    size_ratio = sizes[-1] / sizes[-2]
    assert 0.5 * size_ratio < big_ratio < 2.0 * size_ratio

    # Disk-bound is slower than in-memory throughout.
    assert all(d > m for d, m in zip(disk_delays, mem_delays))

    # Processing speed ramps up as fixed costs amortise, then levels off:
    # the largest collection is within 35% of the previous one's speed.
    assert mem_speed[0] < mem_speed[-1]
    assert abs(mem_speed[-1] - mem_speed[-2]) / mem_speed[-2] < 0.35
    assert disk_speed[0] < disk_speed[-1]
