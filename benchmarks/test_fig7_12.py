"""Fig 7.12 -- Front-end scheduling delay for PTN and ROAR.

Paper: PTN scheduling is O(n) (pick the fastest alive server per cluster);
ROAR's Algorithm 1 is O(n log p), about 2-3x slower in practice (20 ms vs
8.5 ms at n ~ p ~ 1000 in their Java implementation), while the straw-man
O(n p) sweep is ~100x slower.  We measure real wall-clock of the actual
implementations across pool sizes.
"""

import random
import time

from repro.core import Ring
from repro.core.scheduler import schedule_heap, schedule_naive

from conftest import print_series, run_once

SIZES = (100, 400, 1000)


def time_call(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment():
    rows = []
    data = {}
    for n in SIZES:
        rng = random.Random(n)
        speeds = [rng.uniform(0.5, 2.0) for _ in range(n)]
        ring = Ring.proportional(speeds)
        p = n // 10
        est = lambda node, fr: fr / node.speed

        t_heap = time_call(lambda: schedule_heap(ring, p, est))
        t_naive = time_call(lambda: schedule_naive(ring, p, est))

        # PTN scheduling: fastest alive server per cluster, O(n) total.
        clusters = [list(range(i, n, p)) for i in range(p)]

        def ptn_schedule():
            plan = []
            for cluster in clusters:
                best_i = min(cluster, key=lambda i: 1.0 / speeds[i])
                plan.append(best_i)
            return plan

        t_ptn = time_call(ptn_schedule)
        rows.append(
            (n, p, t_ptn * 1000, t_heap * 1000, t_naive * 1000, t_heap / t_ptn)
        )
        data[n] = (t_ptn, t_heap, t_naive)
    return rows, data


def test_fig7_12_scheduling_cost(benchmark):
    rows, data = run_once(benchmark, run_experiment)
    print_series(
        "Fig 7.12: front-end scheduling wall-clock",
        ("n", "p", "PTN (ms)", "ROAR heap (ms)", "naive O(np) (ms)", "ROAR/PTN"),
        rows,
    )

    t_ptn, t_heap, t_naive = data[1000]
    # The heap sweep crushes the O(np) straw man at n=p*10=1000.
    assert t_heap < t_naive / 5
    # ROAR costs a small constant factor over PTN (paper: ~2-3x).
    assert t_heap < 40 * t_ptn
    # Both scale sanely: 10x more servers < 100x more time.
    assert data[1000][1] < data[100][1] * 100
