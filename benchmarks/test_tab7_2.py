"""Table 7.2 -- Energy savings running at p=5 instead of p=47.

Paper: at light load the same query stream costs measurably more energy at
the maximum partitioning level because every query pays 47 fixed overheads
instead of 5; choosing the minimum p that meets the latency target saves
power (their machine room ran 4 deg C hotter at full tilt).
"""

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

RATE = 3.0
N_QUERIES = 150


def run_at(pq):
    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(47), p=5, dataset_size=5e6, seed=21,
            fixed_overhead=0.010,
        )
    )
    arrivals = PoissonArrivals(RATE, seed=5).times(N_QUERIES)
    dep.run_queries(arrivals, pq_fn=pq)
    elapsed = max(r.finish for r in dep.log.records)
    report = dep.energy(elapsed)
    return {
        "pq": pq,
        "elapsed": elapsed,
        "mean_delay": dep.log.raw_mean_delay(),
        "mean_watts": report.mean_watts,
        "busy_joules": report.busy_joules,
        "total_joules": report.total_joules,
        "report": report,
    }


def run_experiment():
    low = run_at(5)
    high = run_at(47)
    return low, high


def test_tab7_2_energy_savings(benchmark):
    low, high = run_once(benchmark, run_experiment)
    rows = [
        (r["pq"], r["mean_delay"] * 1000, r["mean_watts"], r["busy_joules"], r["total_joules"])
        for r in (low, high)
    ]
    print_series(
        "Table 7.2: energy at p=5 vs p=47 (same query stream)",
        ("pq", "mean delay (ms)", "mean watts", "busy J", "total J"),
        rows,
    )
    busy_saving = 1.0 - low["busy_joules"] / high["busy_joules"]
    power_saving = 1.0 - low["mean_watts"] / high["mean_watts"]
    print(
        f"busy-energy saving at p=5: {busy_saving:.1%}; "
        f"mean-power saving: {power_saving:.1%}"
    )

    # p=47 answers faster but burns more *active* energy per query stream.
    assert high["mean_delay"] < low["mean_delay"]
    assert busy_saving > 0.15, "p=5 should save substantial active energy"
    assert power_saving > 0.0
