"""Microbenchmark: batched fast path vs. per-query reference path.

The acceptance bar for the batched query core (ISSUE 2): on a 200-server /
100k-query run the batched path must be at least 5x faster than the
per-query reference path *while producing identical per-query results*.
With the chunked accounting engine (ISSUE 3) the observed ratio is ~15x at
200 servers and ~50x at 1k servers.

Marked ``perf``: excluded from tier-1 (pyproject addopts deselects it) and
run by CI's non-blocking perf job -- wall-clock ratios are load-sensitive,
so this must never gate the fast suite.  The *gating* performance check is
the separate bench-trajectory job (`repro bench --check
benchmarks/baseline.json`), which compares machine-independent speedup
ratios only.
"""

import time

import pytest

pytest.importorskip("numpy")

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import batched_poisson_times

N_SERVERS = 200
N_QUERIES = 100_000
RATE = 300.0
PQ = 5


def _build():
    return Deployment(
        DeploymentConfig(
            models=hen_testbed(N_SERVERS),
            p=PQ,
            dataset_size=5e6,
            seed=2,
            charge_scheduling=False,
        )
    )


@pytest.mark.perf
def test_batched_path_5x_faster_and_identical(series_printer):
    arrivals = list(batched_poisson_times(RATE, N_QUERIES, seed=4))

    slow = _build()
    t0 = time.perf_counter()
    slow.run_queries(arrivals, PQ)
    t_slow = time.perf_counter() - t0

    fast = _build()
    t0 = time.perf_counter()
    result = fast.run_queries_fast(arrivals, PQ)
    t_fast = time.perf_counter() - t0

    series_printer(
        f"Batched vs reference path ({N_SERVERS} servers, {N_QUERIES} queries)",
        ("path", "wall (s)", "us/query", "queries"),
        [
            ("reference", t_slow, 1e6 * t_slow / N_QUERIES, N_QUERIES),
            ("batched", t_fast, 1e6 * t_fast / N_QUERIES, N_QUERIES),
            ("speedup", t_slow / t_fast, "", ""),
        ],
    )

    # identical results -- the speedup is meaningless without this
    assert result.completed == N_QUERIES
    assert [r.delay for r in slow.log.records] == [
        r.delay for r in fast.log.records
    ]
    assert slow.frontend.total_iterations == fast.frontend.total_iterations
    for name in slow.servers:
        assert slow.servers[name].busy_until == fast.servers[name].busy_until

    assert t_slow / t_fast >= 5.0, (
        f"batched path only {t_slow / t_fast:.1f}x faster "
        f"({t_slow:.1f}s vs {t_fast:.1f}s)"
    )


@pytest.mark.perf
def test_thousand_server_scale(series_printer):
    """1k servers: the chunked engine holds ~30us/query; the reference
    path's ~1.7ms/query would take minutes for the same trace."""
    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(1000),
            p=PQ,
            dataset_size=5e6,
            seed=2,
            charge_scheduling=False,
        )
    )
    arrivals = list(batched_poisson_times(1500.0, 50_000, seed=4))
    t0 = time.perf_counter()
    result = dep.run_queries_fast(arrivals, PQ)
    wall = time.perf_counter() - t0
    series_printer(
        "Batched path at 1k servers",
        ("queries", "wall (s)", "us/query", "chunks"),
        [(50_000, wall, 1e6 * wall / 50_000, len(result.chunk_sizes))],
    )
    assert result.completed == 50_000
    assert result.fast_scheduled == 50_000  # no failures: zero delegation
    assert sum(result.chunk_sizes) == 50_000
    assert wall < 30.0
