"""Fig 7.4 -- Effect of updates on server throughput.

Paper: object updates consume server capacity on every replica holder, so
raising the update rate proportionally cuts the query throughput the system
can sustain; the cost scales with r (more replicas = more copies to apply).
"""

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

from conftest import print_series, run_once

UPDATE_RATES = (0.0, 50.0, 150.0, 300.0)
N = 24


def saturated_throughput(update_rate, p):
    """Query completion rate with queries arriving *continuously* at just
    above capacity while updates compete for the same servers."""
    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(N), p=p, dataset_size=5e6, seed=15,
            fixed_overhead=0.006, update_cost=0.012,
        )
    )
    horizon = 12.0
    queries = [
        t for t in PoissonArrivals(16.0, seed=6).times(400) if t <= horizon
    ]
    updates = (
        [t for t in PoissonArrivals(update_rate, seed=7).times(8000) if t <= horizon]
        if update_rate > 0
        else []
    )
    events = sorted([(t, "q") for t in queries] + [(t, "u") for t in updates])
    for t, kind in events:
        if kind == "q":
            dep.run_query(t, p)
        else:
            dep.apply_update(t)
    last = max(r.finish for r in dep.log.records)
    return len(dep.log.records) / last


def run_experiment():
    rows = []
    tput = {}
    for rate in UPDATE_RATES:
        low_r = saturated_throughput(rate, p=12)  # r = 2
        high_r = saturated_throughput(rate, p=4)  # r = 6
        tput[(rate, "low_r")] = low_r
        tput[(rate, "high_r")] = high_r
        rows.append((rate, low_r, high_r))
    return rows, tput


def test_fig7_4_update_overhead(benchmark):
    rows, tput = run_once(benchmark, run_experiment)
    print_series(
        "Fig 7.4: saturated query throughput vs update rate",
        ("updates/s", "tput @ r=2 (q/s)", "tput @ r=6 (q/s)"),
        rows,
    )

    # Updates eat throughput monotonically for both replication levels.
    low_series = [tput[(r, "low_r")] for r in UPDATE_RATES]
    high_series = [tput[(r, "high_r")] for r in UPDATE_RATES]
    assert low_series[-1] < low_series[0]
    assert high_series[-1] < high_series[0]
    # Higher replication loses proportionally more to the same update rate
    # (each update hits r servers).
    low_loss = 1.0 - low_series[-1] / low_series[0]
    high_loss = 1.0 - high_series[-1] / high_series[0]
    assert high_loss > low_loss
