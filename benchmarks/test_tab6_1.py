"""Table 6.1 -- Simulation parameters.

Documents (and sanity-checks) the defaults the Chapter 6 comparison harness
uses, mirroring the paper's parameter table: server pool size, dataset,
heterogeneity, arrival process, the exploding-queue threshold.
"""

from repro.cluster import ComparisonConfig, heterogeneous_speeds, run_comparison
from repro.sim.tracing import EXPLODING_SLOPE

from conftest import print_series, run_once


def collect_parameters():
    cfg = ComparisonConfig(algorithm="roar")
    rows = [
        ("servers (n)", cfg.n_servers),
        ("partitioning level (p)", cfg.p),
        ("dataset size (objects)", cfg.dataset_size),
        ("query arrival process", "Poisson (open loop)"),
        ("query rate (1/s)", cfg.query_rate),
        ("queries per run", cfg.n_queries),
        ("speed heterogeneity", "uniform +-50% around 500k obj/s"),
        ("exploding-queue slope", EXPLODING_SLOPE),
        ("scheduler", cfg.scheduler),
    ]
    return rows


def test_tab6_1_simulation_parameters(benchmark):
    rows = run_once(benchmark, collect_parameters)
    print_series("Table 6.1: simulation parameters", ("parameter", "value"), rows)

    # The defaults must describe a stable (non-exploding) baseline run.
    res = run_comparison(
        ComparisonConfig(algorithm="roar", n_queries=300, seed=1)
    )
    assert not res.exploding

    # Heterogeneity generator: mean preserved, spread present.
    import random

    speeds = heterogeneous_speeds(2000, 0.5, random.Random(0), mean=500_000.0)
    mean = sum(speeds) / len(speeds)
    assert abs(mean - 500_000.0) / 500_000.0 < 0.05
    assert max(speeds) / min(speeds) > 2.0
