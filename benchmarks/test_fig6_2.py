"""Fig 6.2 -- Variation of query delay with N.

Paper: scaling the pool (keeping r and the per-server load profile fixed,
p = n/r) reduces query delay for all algorithms -- more partitions mean less
work per sub-query -- and the relative ordering SW > ROAR > PTN >= OPT is
preserved at every size.
"""

from repro.cluster import ComparisonConfig, run_comparison

from conftest import print_series, run_once

R = 10  # replicas per object, fixed; p = n / R
N_VALUES = (30, 60, 90, 120)


def run_experiment():
    rows = []
    means = {}
    for n in N_VALUES:
        p = n // R
        row = [n, p]
        for algo in ("opt", "ptn", "roar", "sw"):
            res = run_comparison(
                ComparisonConfig(
                    algorithm=algo,
                    n_servers=n,
                    p=p,
                    dataset_size=1e6,
                    # ~30% utilisation at every size: rate * D = 0.3 * n * mean_speed.
                    query_rate=0.15 * n,
                    n_queries=400,
                    seed=13,
                )
            )
            row.append(res.raw_mean_delay * 1000)
            means[(algo, n)] = res.raw_mean_delay
        rows.append(tuple(row))
    return rows, means


def test_fig6_2_delay_vs_n(benchmark):
    rows, means = run_once(benchmark, run_experiment)
    print_series(
        "Fig 6.2: mean query delay (ms) vs N (r fixed at 10)",
        ("N", "p", "optimal", "PTN", "ROAR", "SW"),
        rows,
    )

    for algo in ("opt", "ptn", "roar", "sw"):
        series = [means[(algo, n)] for n in N_VALUES]
        # More servers, more partitions -> lower delay (monotone-ish).
        assert series[-1] < series[0], f"{algo}: delay should drop with N"
    for n in N_VALUES:
        assert means[("opt", n)] <= means[("ptn", n)] * 1.10
        assert means[("roar", n)] <= means[("sw", n)] * 1.15
